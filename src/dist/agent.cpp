#include "dist/agent.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

namespace delaylb::dist {

Agent::Agent(std::size_t id, const core::Instance& instance,
             const core::PairOrderCache* order_cache,
             const AgentOptions& options, util::Rng rng,
             AgentScratch* scratch, TelemetryLane telemetry)
    : id_(id),
      instance_(&instance),
      order_cache_(order_cache),
      options_(options),
      rng_(rng),
      column_(instance.size(), 0.0),
      view_(instance.size(), id),
      scratch_(scratch),
      obs_(telemetry) {
  if (scratch_ == nullptr) {
    owned_scratch_ = std::make_unique<AgentScratch>();
    scratch_ = owned_scratch_.get();
  }
  fanout_ = std::max<std::size_t>(1, options_.fanout_min);
  // The paper's starting state: every organization runs its own requests on
  // its own server.
  column_[id_] = instance.load(id_);
  load_ = instance.load(id_);
  view_.UpdateSelf(load_, 0.0);
  const net::LatencyMatrix& latency = instance.latency_matrix();
  const std::size_t m = instance.size();
  std::size_t reachable = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (j == id_) continue;
    if (latency.Reachable(id_, j) && latency.Reachable(j, id_)) {
      ++reachable;
    }
  }
  peer_count_ = reachable;
  dense_peers_ = reachable + 1 == m;
  if (!dense_peers_ && reachable > 0) {
    // Sparse topologies materialize the list; the common fully-reachable
    // case (every generator we ship) maps draws around id_ instead —
    // m = 50,000 agents would otherwise pin m^2 peer ids.
    peers_.reserve(reachable);
    for (std::size_t j = 0; j < m; ++j) {
      if (j == id_) continue;
      if (latency.Reachable(id_, j) && latency.Reachable(j, id_)) {
        peers_.push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
}

std::size_t Agent::RandomPeer() {
  if (dense_peers_) {
    // Index the implicit ascending peer list [0, m) \ {id_}: the draw and
    // the result are bit-identical to indexing the materialized list.
    const std::size_t r = rng_.below(instance_->size() - 1);
    return r + (r >= id_ ? 1 : 0);
  }
  return peers_[rng_.below(peers_.size())];
}

bool Agent::PeerReachable(std::size_t j) const noexcept {
  if (dense_peers_) return true;
  return std::binary_search(peers_.begin(), peers_.end(),
                            static_cast<std::uint32_t>(j));
}

void Agent::SetColumn(std::span<const double> column, double now) {
  column_.assign(column.begin(), column.end());
  load_ = std::accumulate(column_.begin(), column_.end(), 0.0);
  view_.UpdateSelf(load_, now);
}

std::vector<std::uint16_t> Agent::PackOwnDigest() const {
  return view_.PackDigest(options_.digest_buckets);
}

void Agent::StartGossip(Network& network) {
  if (peer_count_ == 0) return;
  std::size_t expired = 0;
  if (options_.gossip_ttl > 0.0 || options_.gossip_max_entries > 0) {
    const double cutoff =
        options_.gossip_ttl > 0.0
            ? network.now(id_) - options_.gossip_ttl
            : -std::numeric_limits<double>::infinity();
    expired = view_.Expire(cutoff, options_.gossip_max_entries);
    stats_.gossip_expired += expired;
  }
  if (obs_) obs_.GossipRound(expired);
  for (std::size_t push_index = 0; push_index < fanout_; ++push_index) {
    const std::size_t peer = RandomPeer();
    Message push = MakeMessage(MessageKind::kGossipPush, peer);
    if (options_.delta_gossip) push.digest = PackOwnDigest();
    network.Send(std::move(push));
    ++stats_.gossip_rounds;
  }
}

void Agent::AdaptFanout(std::size_t adopted) {
  stats_.gossip_adopted += adopted;
  if (obs_) obs_.GossipMergeYield(adopted);
  if (options_.fanout_max <= options_.fanout_min) return;
  if (adopted > 0) {
    if (fanout_ < options_.fanout_max) ++fanout_;
  } else if (fanout_ > std::max<std::size_t>(1, options_.fanout_min)) {
    --fanout_;
  }
}

double Agent::ProxyScore(std::size_t candidate,
                         double believed_load) const {
  return core::BulkTransferProxy(instance_->speed(id_),
                                 instance_->speed(candidate), load_,
                                 believed_load,
                                 instance_->latency(id_, candidate));
}

std::size_t Agent::SelectPartner() {
  if (peer_count_ == 0) return id_;
  double best_score = 0.0;
  std::size_t best = id_;
  // The sparse view holds exactly the heard-from servers in ascending id
  // order, so this visits the same candidates in the same order as a scan
  // of the peer list that skips never-heard-from entries. Tombstoned
  // entries are departed servers — never balance partners.
  for (const GossipEntry& entry : view_.known()) {
    if (entry.id == id_ || IsTombstone(entry.load) ||
        !PeerReachable(entry.id)) {
      continue;
    }
    const double score = ProxyScore(entry.id, entry.load);
    if (score > best_score) {
      best_score = score;
      best = entry.id;
    }
  }
  if (best == id_ || rng_.uniform() < options_.explore_probability) {
    return RandomPeer();
  }
  return best;
}

std::uint64_t Agent::StartBalance(Network& network) {
  if (busy()) return 0;
  const std::size_t partner = SelectPartner();
  if (partner == id_) return 0;
  const std::uint64_t handshake =
      (static_cast<std::uint64_t>(id_) << 40) | ++next_handshake_;
  initiator_.active = true;
  initiator_.handshake = handshake;
  initiator_.partner = partner;
  initiator_.kind = MessageKind::kBalanceRequest;
  initiator_.opened_at = network.now(id_);
  Message request = MakeMessage(MessageKind::kBalanceRequest, partner);
  request.handshake = handshake;
  request.believed_load =
      view_.Knows(partner) ? view_.load(partner) : -1.0;
  if (options_.piggyback_gossip && options_.delta_gossip) {
    // The responder answers the piggybacked gossip against this digest,
    // shipping only what we provably lack.
    request.digest = PackOwnDigest();
  }
  if (options_.compact_columns) {
    PackColumn(column_, request);
  } else {
    request.payload = column_;
  }
  network.Send(std::move(request));
  return handshake;
}

std::uint64_t Agent::OnMessage(const Message& message, Network& network) {
  // Every protocol message doubles as single-entry gossip about its
  // sender; folding it in first makes e.g. kStale aborts self-correcting.
  view_.Observe(message.from, message.load,
                GossipView::DecodeVersion(message.load_version),
                message.load_stamp);
  switch (message.kind) {
    case MessageKind::kGossipPush:
      HandleGossipPush(message, network);
      break;
    case MessageKind::kGossipPull:
      HandleGossipPull(message, network);
      break;
    case MessageKind::kGossipDelta: {
      TelemetryLane::AdoptionAges ages(obs_, network.now(id_));
      AdaptFanout(view_.MergeEntries(message.payload, ages.get()));
      break;
    }
    case MessageKind::kBalanceRequest:
      HandleBalanceRequest(message, network);
      break;
    case MessageKind::kBalanceReply:
      HandleBalanceReply(message, network);
      break;
    case MessageKind::kBalanceCommit:
      HandleBalanceCommit(message);
      break;
    case MessageKind::kBalanceAbort:
      return HandleBalanceAbort(message, network);
    case MessageKind::kJoinRequest:
      HandleJoinRequest(message, network);
      break;
    case MessageKind::kJoinReply:
      HandleJoinReply(message, network);
      break;
    case MessageKind::kJoinCommit:
    case MessageKind::kDrainCommit:
      // Same resolution as a balance Commit: close the matching
      // responder-side undo record.
      HandleBalanceCommit(message);
      break;
    case MessageKind::kDrainRequest:
      HandleDrainRequest(message, network);
      break;
    case MessageKind::kDrainReply:
      HandleDrainReply(message, network);
      break;
  }
  return 0;
}

void Agent::HandleGossipPush(const Message& message, Network& network) {
  // Answer the push's digest with what it cannot prove the pusher holds
  // (everything, when deltas are off and the digest is empty), and attach
  // our own digest so the closing kGossipDelta can reconcile the reverse
  // direction.
  Message pull = MakeMessage(MessageKind::kGossipPull, message.from);
  pull.payload = view_.PackEntriesNewerThan(message.digest);
  if (options_.delta_gossip) pull.digest = PackOwnDigest();
  network.Send(std::move(pull));
}

void Agent::HandleGossipPull(const Message& message, Network& network) {
  // Pack the closing delta BEFORE merging the pull's payload: everything
  // the peer just shipped is exactly what it holds, and packing pre-merge
  // keeps those entries off the return wire. (The full-view mode packs
  // pre-merge too, so both modes ship a superset of the same
  // strictly-newer set and the peer adopts identically.)
  Message delta = MakeMessage(MessageKind::kGossipDelta, message.from);
  delta.payload = view_.PackEntriesNewerThan(message.digest);
  TelemetryLane::AdoptionAges ages(obs_, network.now(id_));
  AdaptFanout(view_.MergeEntries(message.payload, ages.get()));
  network.Send(std::move(delta));
}

Message Agent::MakeMessage(MessageKind kind, std::size_t to) const {
  Message msg;
  msg.kind = kind;
  msg.from = static_cast<std::uint32_t>(id_);
  msg.to = static_cast<std::uint32_t>(to);
  // The view's own entry, not load_: the two agree at every instant an
  // ordinary message is sent (every load_ mutation calls UpdateSelf), and
  // a departure announcement must carry the TOMBSTONE as its sender
  // triple — receivers fold the triple in first, and the payload quad at
  // the same version would otherwise lose to a live load.
  msg.load = view_.load(id_);
  msg.load_version = GossipView::EncodeVersion(view_.version(id_));
  msg.load_stamp = view_.stamp(id_);
  return msg;
}

void Agent::SendAbort(const Message& request, AbortReason reason,
                      Network& network) {
  Message abort = MakeMessage(MessageKind::kBalanceAbort, request.from);
  abort.handshake = request.handshake;
  abort.reason = reason;
  network.Send(std::move(abort));
}

core::PairBalanceResult Agent::BalanceAgainst(
    const Message& message, std::span<const double>& initiator_column) {
  // Algorithm 1 on the exchanged columns: the initiator's column arrived in
  // the request, ours is local. Roles: i = initiator, j = this server.
  const std::size_t from = message.from;
  core::PairBalanceWorkspace& workspace = scratch_->workspace;
  initiator_column = message.payload;
  if (message.encoding != ColumnEncoding::kDense) {
    UnpackColumn(message, column_.size(), {}, scratch_->peer_column);
    initiator_column = scratch_->peer_column;
  }
  core::ColumnBalanceInput input;
  input.s_i = instance_->speed(from);
  input.s_j = instance_->speed(id_);
  input.r_i = initiator_column;
  input.r_j = column_;
  if (order_cache_ != nullptr) {
    input.c_i = order_cache_->lat_col(from);
    input.c_j = order_cache_->lat_col(id_);
    input.order_cache = order_cache_;
    input.cache_i = from;
    input.cache_j = id_;
  } else {
    const std::size_t m = instance_->size();
    workspace.lat_i.resize(m);
    workspace.lat_j.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      workspace.lat_i[k] = instance_->latency(k, from);
      workspace.lat_j[k] = instance_->latency(k, id_);
    }
    input.c_i = workspace.lat_i;
    input.c_j = workspace.lat_j;
  }
  if (options_.local_engine == LocalEngine::kIps) {
    // The IPS kernel has no admissible improvement bound, so no pruning;
    // below-min_gain results are declined by the caller as usual.
    return core::BalanceColumnsIps(input, workspace);
  }
  // Early-exit once the admissible improvement bound falls below the gain
  // we would decline anyway: near convergence most requests end in kNoGain
  // and then pay only the phase-0 bound check, not the Lemma-1 pass (or a
  // PairOrderCache first-touch sort).
  input.abort_below = options_.min_gain;
  return core::BalanceColumns(input, workspace);
}

void Agent::HandleBalanceRequest(const Message& message, Network& network) {
  // Joining and draining agents decline NEW balance work (their column is
  // mid-bootstrap or mid-drain); open handshakes they are party to still
  // resolve through the ordinary paths.
  if (state_ != MemberState::kMember || busy()) {
    SendAbort(message, AbortReason::kBusy, network);
    return;
  }
  if (message.believed_load >= 0.0 &&
      std::fabs(message.believed_load - load_) >
          options_.stale_tolerance * std::max(1.0, load_)) {
    SendAbort(message, AbortReason::kStale, network);
    return;
  }

  core::PairBalanceWorkspace& workspace = scratch_->workspace;
  std::span<const double> initiator_column;
  const core::PairBalanceResult result =
      BalanceAgainst(message, initiator_column);
  if (!(result.improvement > options_.min_gain)) {
    SendAbort(message, AbortReason::kNoGain, network);
    return;
  }

  // Apply our half now, keep an undo snapshot until the Commit (or a
  // bounced Reply) resolves the handshake.
  responder_.active = true;
  responder_.handshake = message.handshake;
  responder_.partner = message.from;
  responder_.undo_column = std::move(column_);
  column_ = workspace.new_rkj;
  load_ = result.new_load_j;
  view_.UpdateSelf(load_, network.now(id_));

  Message reply = MakeMessage(MessageKind::kBalanceReply, message.from);
  reply.handshake = message.handshake;
  if (options_.compact_columns) {
    // The initiator still holds the column it sent (it is busy until our
    // Reply resolves), so ship only the entries Algorithm 1 re-routed.
    PackColumnDelta(initiator_column, workspace.new_rki, reply);
  } else {
    reply.payload = workspace.new_rki;
  }
  if (options_.piggyback_gossip) {
    // Free-riding anti-entropy: the initiator gets a gossip merge out of
    // every completed exchange. Against the Request's digest (delta mode)
    // only the entries it provably lacks ride along; an empty digest
    // proves nothing and ships the whole view.
    reply.gossip = view_.PackEntriesNewerThan(message.digest);
  }
  network.Send(std::move(reply));
}

void Agent::HandleBalanceReply(const Message& message, Network& network) {
  if (!initiator_.active || initiator_.handshake != message.handshake) {
    return;  // stale reply of an already-resolved handshake
  }
  // Piggybacked merges never feed the fanout controller: whether the delta
  // payload came back empty depends on the wire format, and the controller
  // must step identically in both modes.
  if (!message.gossip.empty()) {
    TelemetryLane::AdoptionAges ages(obs_, network.now(id_));
    view_.MergeEntries(message.gossip, ages.get());
  }
  if (message.encoding == ColumnEncoding::kDense) {
    SetColumn(message.payload, network.now(id_));
  } else {
    // A kDelta Reply is relative to the column we sent in the Request —
    // unchanged since then, because an open initiator handshake keeps us
    // out of every other exchange.
    UnpackColumn(message, column_.size(), column_, scratch_->decoded_column);
    SetColumn(scratch_->decoded_column, network.now(id_));
  }
  initiator_.active = false;
  ++stats_.balances_completed;
  if (obs_) {
    obs_.HandshakeResolved("balance", id_, initiator_.partner,
                           message.handshake, initiator_.opened_at,
                           network.now(id_), HandshakeOutcome::kCompleted);
  }
  Message commit = MakeMessage(MessageKind::kBalanceCommit, message.from);
  commit.handshake = message.handshake;
  network.Send(std::move(commit));
}

void Agent::HandleBalanceCommit(const Message& message) {
  if (!responder_.active || responder_.handshake != message.handshake) {
    return;
  }
  responder_.active = false;
  responder_.undo_column.clear();
  ++stats_.balances_completed;
}

std::uint64_t Agent::HandleBalanceAbort(const Message& message,
                                        Network& network) {
  if (!initiator_.active || initiator_.handshake != message.handshake) {
    return 0;
  }
  const MessageKind kind = initiator_.kind;
  initiator_.active = false;
  if (obs_) {
    HandshakeOutcome outcome = HandshakeOutcome::kBusy;
    if (message.reason == AbortReason::kStale) {
      outcome = HandshakeOutcome::kStale;
    } else if (message.reason == AbortReason::kNoGain) {
      outcome = HandshakeOutcome::kNoGain;
    }
    obs_.HandshakeResolved(kind == MessageKind::kJoinRequest  ? "join"
                           : kind == MessageKind::kDrainRequest ? "drain"
                                                                : "balance",
                           id_, initiator_.partner, message.handshake,
                           initiator_.opened_at, network.now(id_), outcome);
  }
  if (kind == MessageKind::kJoinRequest) {
    // Busy seed: rather than retry a transient rejection, bootstrap solo —
    // always safe, and the gossip timers announce us within one period.
    CompleteJoin(/*via_seed=*/false, network.now(id_));
    return 0;
  }
  if (message.reason == AbortReason::kNoGain) {
    ++stats_.balances_no_gain;
  } else {
    ++stats_.balances_rejected;
  }
  if (kind == MessageKind::kDrainRequest &&
      state_ == MemberState::kDraining) {
    if (cancel_pending_) {
      // The drain failed and a rejoin already asked to cancel: stay,
      // keeping the column.
      cancel_pending_ = false;
      state_ = MemberState::kMember;
      return 0;
    }
    // Busy target: retry toward another candidate immediately instead of
    // waiting out the balance period — members are busy often enough that
    // tick-paced retries leave drains straggling through a leave burst.
    // Rate-limited naturally by the abort round trip; the caller arms a
    // fresh resolution timeout for the returned handshake.
    return StartDrain(network);
  }
  return 0;
}

std::uint64_t Agent::OnDeliveryFailure(const Message& message,
                                       Network& network) {
  switch (message.kind) {
    case MessageKind::kBalanceRequest:
    case MessageKind::kDrainRequest:
      // The responder never saw the request: nothing applied anywhere.
      // A bounced drain retries toward another candidate immediately
      // (same rationale as the kBusy abort path).
      if (initiator_.active && initiator_.handshake == message.handshake) {
        initiator_.active = false;
        ++stats_.balances_rejected;
        if (obs_) {
          obs_.HandshakeResolved(
              message.kind == MessageKind::kDrainRequest ? "drain"
                                                         : "balance",
              id_, initiator_.partner, message.handshake,
              initiator_.opened_at, network.now(id_),
              HandshakeOutcome::kBounce);
        }
        if (message.kind == MessageKind::kDrainRequest &&
            state_ == MemberState::kDraining) {
          if (cancel_pending_) {
            cancel_pending_ = false;
            state_ = MemberState::kMember;
            break;
          }
          return StartDrain(network);
        }
      }
      break;
    case MessageKind::kJoinRequest:
      // The seed is dead, departed, or unreachable: bootstrap solo.
      if (initiator_.active && initiator_.handshake == message.handshake) {
        initiator_.active = false;
        if (obs_) {
          obs_.HandshakeResolved("join", id_, initiator_.partner,
                                 message.handshake, initiator_.opened_at,
                                 network.now(id_), HandshakeOutcome::kBounce);
        }
        CompleteJoin(/*via_seed=*/false, network.now(id_));
      }
      break;
    case MessageKind::kBalanceReply:
    case MessageKind::kJoinReply:
    case MessageKind::kDrainReply:
      // The initiator is down and will never apply: roll back our half so
      // the exchange is applied at neither end. (For a drain this returns
      // the absorbed column — the leaver still holds it.)
      if (responder_.active && responder_.handshake == message.handshake) {
        SetColumn(responder_.undo_column, network.now(id_));
        responder_.active = false;
        responder_.undo_column.clear();
        ++stats_.balances_rejected;
      }
      break;
    case MessageKind::kBalanceCommit:
    case MessageKind::kJoinCommit:
    case MessageKind::kDrainCommit:
    case MessageKind::kBalanceAbort:
    case MessageKind::kGossipPush:
    case MessageKind::kGossipPull:
    case MessageKind::kGossipDelta:
      // Commit: both ends applied already; the crashed responder resolves
      // its undo record at recovery. Aborts and gossip carry no obligation.
      break;
  }
  return 0;
}

void Agent::OnBalanceTimeout(std::uint64_t handshake, double now) {
  if (initiator_.active && initiator_.handshake == handshake) {
    // Silence: the request or its answer bounced while we were down.
    const MessageKind kind = initiator_.kind;
    initiator_.active = false;
    if (obs_) {
      obs_.HandshakeResolved(kind == MessageKind::kJoinRequest  ? "join"
                             : kind == MessageKind::kDrainRequest ? "drain"
                                                                  : "balance",
                             id_, initiator_.partner, handshake,
                             initiator_.opened_at, now,
                             HandshakeOutcome::kTimeout);
    }
    if (kind == MessageKind::kJoinRequest) {
      CompleteJoin(/*via_seed=*/false, now);
      return;
    }
    ++stats_.balances_rejected;
    if (kind == MessageKind::kDrainRequest && cancel_pending_ &&
        state_ == MemberState::kDraining) {
      // The timed-out drain resolves the deferred rejoin-cancellation:
      // stay, keeping the column (next tick would otherwise re-drain).
      cancel_pending_ = false;
      state_ = MemberState::kMember;
    }
  } else if (responder_.active && responder_.handshake == handshake) {
    // The Reply's delivery instant has passed (the timeout exceeds the
    // round trip) and the record is still open, so the Reply did not
    // bounce — it was delivered and the initiator applied. Commit.
    responder_.active = false;
    responder_.undo_column.clear();
    ++stats_.balances_completed;
  }
}

void Agent::OnCrash() {
  // Unavailability, not amnesia: column, view, and open handshake records
  // survive; the network drops traffic addressed to us while down.
}

std::uint64_t Agent::OnRecover(Network& network) {
  if (!active()) return 0;  // departed while down: nothing to announce
  // Re-announce a fresh view: bump our version so peers adopt the entry,
  // and gossip immediately rather than waiting out the timer.
  view_.UpdateSelf(load_, network.now(id_));
  StartGossip(network);
  // A surviving handshake record of either role needs its resolution
  // timeout re-armed. Initiator: the answer either bounced while we were
  // down (the timeout clears it as rejected) or is still in flight and
  // arrives before the deadline. Responder: the Commit either got dropped
  // while we were down (the timeout commits — the Reply was delivered) or
  // the still-in-flight Reply/Commit resolves the record before the
  // deadline; committing eagerly here would be wrong while the Reply is
  // on the wire, because it may yet bounce and demand the rollback.
  if (initiator_.active) return initiator_.handshake;
  if (responder_.active) return responder_.handshake;
  return 0;
}

void Agent::Deactivate() {
  column_.assign(column_.size(), 0.0);
  load_ = 0.0;
  // Keep the private view consistent with the empty column; the entry is
  // never heard (absent agents send nothing) and the first OnJoin bumps
  // past it before any message leaves.
  view_.UpdateSelf(0.0, 0.0);
  state_ = MemberState::kAbsent;
}

void Agent::CompleteJoin(bool via_seed, double now) {
  // A leave scheduled onto a still-joining agent flips it to kDraining;
  // the join resolution must not undo that.
  if (state_ == MemberState::kJoining) state_ = MemberState::kMember;
  if (via_seed) {
    ++stats_.joins_completed;
  } else {
    ++stats_.join_fallbacks;
  }
  if (obs_) obs_.JoinCompleted(id_, now, via_seed);
}

std::uint64_t Agent::OnJoin(std::size_t seed, bool first, bool crashed,
                            Network& network) {
  state_ = MemberState::kJoining;
  departed_pending_ = false;
  column_.assign(column_.size(), 0.0);
  if (first) {
    // The paper's starting state, claimed on first activation: the
    // organization's own requests run on its own server. A rejoin starts
    // empty — the demand was drained away on leave and lives elsewhere.
    column_[id_] = instance_->load(id_);
  }
  load_ = column_[id_];
  // Bumps strictly past our own tombstone (Depart wrote it through
  // UpdateSelf, so the version chain is continuous): every peer that
  // adopted the tombstone supersedes it on first contact.
  view_.UpdateSelf(load_, network.now(id_));
  if (crashed || seed == id_ || !PeerReachable(seed)) {
    // No usable seed (or we are inside one of our own crash windows and
    // cannot send): solo join — the gossip timer chain the runtime just
    // armed announces us within one period.
    CompleteJoin(/*via_seed=*/false, network.now(id_));
    return 0;
  }
  const std::uint64_t handshake =
      (static_cast<std::uint64_t>(id_) << 40) | ++next_handshake_;
  initiator_.active = true;
  initiator_.handshake = handshake;
  initiator_.partner = seed;
  initiator_.kind = MessageKind::kJoinRequest;
  initiator_.opened_at = network.now(id_);
  Message request = MakeMessage(MessageKind::kJoinRequest, seed);
  request.handshake = handshake;
  request.believed_load = -1.0;  // we know nothing yet; never kStale
  if (options_.delta_gossip) request.digest = PackOwnDigest();
  if (options_.compact_columns) {
    PackColumn(column_, request);
  } else {
    request.payload = column_;
  }
  network.Send(std::move(request));
  return handshake;
}

void Agent::OnLeave() {
  if (state_ == MemberState::kMember || state_ == MemberState::kJoining) {
    state_ = MemberState::kDraining;
  }
  // A fresh leave overrides any deferred rejoin-cancellation.
  cancel_pending_ = false;
}

bool Agent::CancelLeave() noexcept {
  if (state_ != MemberState::kDraining) return false;
  if (initiator_.active &&
      initiator_.kind == MessageKind::kDrainRequest) {
    // The column is on the wire; cancel when the handshake resolves.
    cancel_pending_ = true;
    return true;
  }
  state_ = MemberState::kMember;
  return true;
}

std::size_t Agent::SelectDrainTarget() {
  if (peer_count_ == 0) return id_;
  // Gather the least-loaded live candidates. Picking THE argmin herds: in
  // a leave burst every drainer reads the same (lagged) view, piles onto
  // one target, and all but one bounce kBusy — drains then serialize at
  // one per balance tick. Drawing uniformly (rng_, deterministic) from a
  // small least-loaded set spreads a burst across targets while still
  // steering the column toward spare capacity.
  constexpr std::size_t kSpread = 8;
  struct Candidate {
    double score;
    std::size_t id;
  };
  std::vector<Candidate> best;
  best.reserve(kSpread + 1);
  for (const GossipEntry& entry : view_.known()) {
    if (entry.id == id_ || IsTombstone(entry.load) ||
        !PeerReachable(entry.id)) {
      continue;
    }
    const double score = entry.load / instance_->speed(entry.id);
    // Insertion sort into the top-k, ties to the lower id: the candidate
    // set is a deterministic function of the view.
    auto it = best.begin();
    while (it != best.end() &&
           (it->score < score || (it->score == score && it->id < entry.id))) {
      ++it;
    }
    best.insert(it, Candidate{score, entry.id});
    if (best.size() > kSpread) best.pop_back();
  }
  // A view with no live candidate still probes: the random peer either
  // absorbs the column or bounces, and we retry next tick.
  if (best.empty()) return RandomPeer();
  return best[rng_.below(best.size())].id;
}

std::uint64_t Agent::StartDrain(Network& network) {
  if (busy()) return 0;
  if (load_ == 0.0) {
    // Nothing left to hand off (columns are non-negative, so a zero sum
    // means an empty column): announce the departure and go absent.
    Depart(network);
    return 0;
  }
  const std::size_t target = SelectDrainTarget();
  if (target == id_) return 0;  // no peer at all; retry next tick
  const std::uint64_t handshake =
      (static_cast<std::uint64_t>(id_) << 40) | ++next_handshake_;
  initiator_.active = true;
  initiator_.handshake = handshake;
  initiator_.partner = target;
  initiator_.kind = MessageKind::kDrainRequest;
  initiator_.opened_at = network.now(id_);
  Message request = MakeMessage(MessageKind::kDrainRequest, target);
  request.handshake = handshake;
  request.believed_load = -1.0;
  if (options_.compact_columns) {
    PackColumn(column_, request);
  } else {
    request.payload = column_;
  }
  network.Send(std::move(request));
  return handshake;
}

void Agent::HandleJoinRequest(const Message& message, Network& network) {
  if (state_ != MemberState::kMember || busy()) {
    SendAbort(message, AbortReason::kBusy, network);
    return;
  }
  // A join is a balance handshake in different clothes: run Algorithm 1
  // on the joiner's (possibly empty) column against ours. No staleness
  // check — the joiner has no view yet.
  core::PairBalanceWorkspace& workspace = scratch_->workspace;
  std::span<const double> joiner_column;
  const core::PairBalanceResult result =
      BalanceAgainst(message, joiner_column);
  const bool apply = result.improvement > options_.min_gain;
  if (apply) {
    // Same crash-atomicity as a balance exchange: apply our half now,
    // keep the undo until the joiner's Commit (or a bounced Reply).
    responder_.active = true;
    responder_.handshake = message.handshake;
    responder_.partner = message.from;
    responder_.undo_column = std::move(column_);
    column_ = workspace.new_rkj;
    load_ = result.new_load_j;
    view_.UpdateSelf(load_, network.now(id_));
  }
  Message reply = MakeMessage(MessageKind::kJoinReply, message.from);
  reply.handshake = message.handshake;
  reply.reason = apply ? AbortReason::kNone : AbortReason::kNoGain;
  if (apply) {
    if (options_.compact_columns) {
      PackColumnDelta(joiner_column, workspace.new_rki, reply);
    } else {
      reply.payload = workspace.new_rki;
    }
  }
  // The bootstrap: our whole view, minus whatever the joiner's digest
  // already proves it holds (a rejoiner remembers its old view). Packed
  // after the UpdateSelf above so our fresh entry rides along.
  reply.gossip = view_.PackEntriesNewerThan(message.digest);
  network.Send(std::move(reply));
}

void Agent::HandleJoinReply(const Message& message, Network& network) {
  if (!initiator_.active || initiator_.handshake != message.handshake) {
    return;
  }
  initiator_.active = false;
  // Adopt the seed's view first — this is the whole point of joining
  // through a seed instead of solo.
  if (!message.gossip.empty()) {
    TelemetryLane::AdoptionAges ages(obs_, network.now(id_));
    view_.MergeEntries(message.gossip, ages.get());
  }
  if (obs_) {
    obs_.HandshakeResolved("join", id_, initiator_.partner,
                           message.handshake, initiator_.opened_at,
                           network.now(id_),
                           message.reason == AbortReason::kNone
                               ? HandshakeOutcome::kCompleted
                               : HandshakeOutcome::kNoGain);
  }
  if (message.reason == AbortReason::kNone) {
    // The seed shed load onto us; kNoGain means we keep our own column.
    if (message.encoding == ColumnEncoding::kDense) {
      SetColumn(message.payload, network.now(id_));
    } else {
      UnpackColumn(message, column_.size(), column_,
                   scratch_->decoded_column);
      SetColumn(scratch_->decoded_column, network.now(id_));
    }
    ++stats_.balances_completed;
    Message commit = MakeMessage(MessageKind::kJoinCommit, message.from);
    commit.handshake = message.handshake;
    network.Send(std::move(commit));
  }
  CompleteJoin(/*via_seed=*/true, network.now(id_));
}

void Agent::HandleDrainRequest(const Message& message, Network& network) {
  if (state_ != MemberState::kMember || busy()) {
    SendAbort(message, AbortReason::kBusy, network);
    return;
  }
  std::span<const double> drained = message.payload;
  if (message.encoding != ColumnEncoding::kDense) {
    UnpackColumn(message, column_.size(), {}, scratch_->peer_column);
    drained = scratch_->peer_column;
  }
  // Absorb the leaver's whole column on top of ours, undo snapshot until
  // its Commit — between our apply and the leaver zeroing its copy the
  // global allocation double-counts the column, which is exactly the
  // UncommittedExchanges window the runtime already accounts for.
  responder_.active = true;
  responder_.handshake = message.handshake;
  responder_.partner = message.from;
  responder_.undo_column = column_;
  for (std::size_t k = 0; k < column_.size(); ++k) column_[k] += drained[k];
  load_ = std::accumulate(column_.begin(), column_.end(), 0.0);
  view_.UpdateSelf(load_, network.now(id_));
  ++stats_.drain_handoffs;
  if (obs_) obs_.DrainHandoff();
  Message reply = MakeMessage(MessageKind::kDrainReply, message.from);
  reply.handshake = message.handshake;
  network.Send(std::move(reply));
}

void Agent::HandleDrainReply(const Message& message, Network& network) {
  if (!initiator_.active || initiator_.handshake != message.handshake) {
    return;
  }
  initiator_.active = false;
  // The target holds our column now: zero ours, confirm, and depart.
  column_.assign(column_.size(), 0.0);
  load_ = 0.0;
  view_.UpdateSelf(0.0, network.now(id_));
  ++stats_.drain_handoffs;
  if (obs_) {
    obs_.DrainHandoff();
    obs_.HandshakeResolved("drain", id_, initiator_.partner,
                           message.handshake, initiator_.opened_at,
                           network.now(id_), HandshakeOutcome::kCompleted);
  }
  Message commit = MakeMessage(MessageKind::kDrainCommit, message.from);
  commit.handshake = message.handshake;
  network.Send(std::move(commit));
  if (cancel_pending_) {
    // A rejoin raced the drain: the handoff stands (the target committed),
    // but instead of departing we re-enter membership empty — exactly the
    // state a rejoin bootstraps into, without ever having left the view.
    cancel_pending_ = false;
    state_ = MemberState::kMember;
    return;
  }
  Depart(network);
}

void Agent::Depart(Network& network) {
  // The tombstone is our own next self-version: peers adopt it through
  // the ordinary strictly-newer rule, and a future rejoin's UpdateSelf
  // supersedes it the same way (gossip.h has the expiry argument).
  view_.UpdateSelf(kTombstoneLoad, network.now(id_));
  if (peer_count_ > 0) {
    for (std::size_t push = 0; push < options_.departure_fanout; ++push) {
      const std::size_t peer = RandomPeer();
      Message bye = MakeMessage(MessageKind::kGossipDelta, peer);
      bye.payload = view_.PackEntry(id_);
      network.Send(std::move(bye));
    }
  }
  state_ = MemberState::kAbsent;
  departed_pending_ = true;
  if (obs_) obs_.Departed(id_, network.now(id_));
}

void Agent::ApplyLoadDelta(double delta, double now) {
  if (!active()) return;
  // Demand changes land on the organization's local share: new requests
  // enter at their home server (rebalancing spreads them from there), and
  // expiring demand is recalled from it, clamped at zero — requests
  // already rebalanced away are not recalled from remote columns.
  const double updated = std::max(0.0, column_[id_] + delta);
  load_ += updated - column_[id_];
  column_[id_] = updated;
  view_.UpdateSelf(load_, now);
}

}  // namespace delaylb::dist
