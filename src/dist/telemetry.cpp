#include "dist/telemetry.h"

#include <algorithm>

namespace delaylb::dist {

Telemetry Telemetry::Create(obs::Hub& hub) {
  Telemetry t;
  t.hub = &hub;
  obs::MetricRegistry& m = hub.metrics();
  t.hs_completed = m.AddCounter("handshake.completed");
  t.hs_no_gain = m.AddCounter("handshake.no_gain");
  t.hs_busy = m.AddCounter("handshake.abort.busy");
  t.hs_stale = m.AddCounter("handshake.abort.stale");
  t.hs_bounce = m.AddCounter("handshake.bounce");
  t.hs_timeout = m.AddCounter("handshake.timeout");
  // Latency bounds in sim ms: handshakes resolve within a round trip or a
  // timeout, both O(100 ms) at the paper's latency scales.
  const std::vector<double> latency_bounds = {1,  2,   5,   10,  20,  50,
                                              75, 100, 150, 250, 500, 1000};
  t.hs_latency_ok = m.AddHistogram("handshake.latency.completed",
                                   latency_bounds);
  t.hs_latency_fail = m.AddHistogram("handshake.latency.failed",
                                     latency_bounds);
  t.gossip_rounds = m.AddCounter("gossip.rounds");
  t.gossip_expired = m.AddCounter("gossip.expired");
  t.gossip_staleness = m.AddHistogram(
      "gossip.staleness_age",
      {1, 5, 10, 25, 50, 100, 200, 400, 800, 1600, 3200});
  t.gossip_yield = m.AddHistogram("gossip.adoption_yield",
                                  {0, 1, 2, 4, 8, 16, 32, 64, 128});
  t.joins = m.AddCounter("membership.joins");
  t.join_fallbacks = m.AddCounter("membership.join_fallbacks");
  t.drain_handoffs = m.AddCounter("membership.drain_handoffs");
  t.departures = m.AddCounter("membership.departures");
  return t;
}

void TelemetryLane::HandshakeResolved(const char* kind, std::uint64_t id,
                                      std::uint64_t partner,
                                      std::uint64_t handshake,
                                      double opened_at, double now,
                                      HandshakeOutcome outcome) const {
  if (telemetry_ == nullptr) return;
  obs::MetricRegistry& m = telemetry_->hub->metrics();
  const double latency = std::max(0.0, now - opened_at);
  obs::MetricId counter;
  switch (outcome) {
    case HandshakeOutcome::kCompleted: counter = telemetry_->hs_completed; break;
    case HandshakeOutcome::kNoGain: counter = telemetry_->hs_no_gain; break;
    case HandshakeOutcome::kBusy: counter = telemetry_->hs_busy; break;
    case HandshakeOutcome::kStale: counter = telemetry_->hs_stale; break;
    case HandshakeOutcome::kBounce: counter = telemetry_->hs_bounce; break;
    case HandshakeOutcome::kTimeout: counter = telemetry_->hs_timeout; break;
  }
  m.Count(lane_, counter);
  m.Observe(lane_,
            outcome == HandshakeOutcome::kCompleted ? telemetry_->hs_latency_ok
                                                    : telemetry_->hs_latency_fail,
            latency);
  telemetry_->hub->trace().Span(
      lane_, obs::TracePid::kSim, static_cast<std::uint32_t>(id), kind,
      "handshake", opened_at, latency,
      obs::TraceKey{0, id, handshake},
      {{"partner", static_cast<double>(partner)},
       {"outcome", static_cast<double>(outcome)}});
}

void TelemetryLane::GossipRound(std::uint64_t expired) const {
  if (telemetry_ == nullptr) return;
  obs::MetricRegistry& m = telemetry_->hub->metrics();
  m.Count(lane_, telemetry_->gossip_rounds);
  if (expired > 0) m.Count(lane_, telemetry_->gossip_expired, expired);
}

void TelemetryLane::GossipMergeYield(std::uint64_t adopted) const {
  if (telemetry_ == nullptr) return;
  telemetry_->hub->metrics().Observe(lane_, telemetry_->gossip_yield,
                                     static_cast<double>(adopted));
}

void TelemetryLane::JoinCompleted(std::uint64_t id, double now,
                                  bool via_seed) const {
  if (telemetry_ == nullptr) return;
  obs::MetricRegistry& m = telemetry_->hub->metrics();
  m.Count(lane_, via_seed ? telemetry_->joins : telemetry_->join_fallbacks);
  telemetry_->hub->trace().Instant(
      lane_, obs::TracePid::kSim, static_cast<std::uint32_t>(id),
      via_seed ? "join" : "join.solo", "membership", now,
      obs::TraceKey{1, id, 0});
}

void TelemetryLane::DrainHandoff() const {
  if (telemetry_ == nullptr) return;
  telemetry_->hub->metrics().Count(lane_, telemetry_->drain_handoffs);
}

void TelemetryLane::Departed(std::uint64_t id, double now) const {
  if (telemetry_ == nullptr) return;
  telemetry_->hub->metrics().Count(lane_, telemetry_->departures);
  telemetry_->hub->trace().Instant(
      lane_, obs::TracePid::kSim, static_cast<std::uint32_t>(id), "depart",
      "membership", now, obs::TraceKey{1, id, 0});
}

void TelemetryLane::AdoptionAges::Adopted(const GossipEntry& entry) {
  if (!lane_) return;
  lane_.hub()->metrics().Observe(lane_.lane(),
                                 lane_.telemetry_->gossip_staleness,
                                 std::max(0.0, now_ - entry.stamp));
}

}  // namespace delaylb::dist
