#pragma once
// Versioned load gossip: the state each server disseminates in the
// distributed deployment of the MinE algorithm.
//
// Every server keeps a *sparse* view of server loads: one entry per server
// it has heard from, carrying the load, a per-owner version counter, and
// the owner's simulation-time stamp of that version. A server bumps its own
// version whenever its load changes (UpdateSelf); merging peer entries
// adopts every entry whose version is strictly newer. Repeated pairwise
// merges therefore converge to the newest value per entry regardless of
// exchange order — the standard anti-entropy argument.
//
// The wire format is delta-reconciled (dist/agent.h runs the protocol): a
// gossip exchange opens with a compact *version-vector digest* — per
// id-bucket, the minimum version counter over the bucket's entries,
// shipped as one 16-bit saturating level per bucket — and the answer
// ships only entries *not provably covered* by the digest. Soundness is
// one inequality: a digest level is a lower bound (saturation rounds
// down, and a bucket with any member missing from the view reports
// kDigestIncomplete), so if B skips entry j against A's digest
// (version_B(j) <= level), then A holds j at
// version_A(j) >= bucket min >= level >= version_B(j) — the skipped
// entry was provably not needed. The shipped set is therefore a superset
// of the strictly-newer set and a delta exchange adopts exactly the
// entries a full exchange would: toggling deltas changes bytes on the
// wire, never the simulation (the DeltaGossipOnlyShrinkBytes contract).
// With one bucket per id (the default) and versions below the 0xFFFE
// saturation point the proof is *exact*: the delta ships precisely the
// strictly-newer entries. Version counters quantize losslessly where
// timestamps cannot — a floor-quantized stamp digest has one-quantum
// slack, which re-ships every entry whose stamp has a fractional part.
//
// Per-owner stamps are strictly increasing in the version (UpdateSelf
// nudges the stamp by one ulp when two updates land at the same simulated
// instant): for one entry j, version_B(j) > version_A(j) if and only if
// stamp_B(j) > stamp_A(j). Expiry (below) leans on that equivalence.
//
// Versions are stored as integral uint64 counters and travel as exact
// doubles; packing guards the 2^53 boundary so a counter can never silently
// lose increments on the wire (kMaxWireVersion).
//
// Age-capped expiry (Expire) drops entries whose stamp fell behind a
// cutoff and bounds the entry count, so views at m = 50,000 hold the
// recently-active working set instead of pinning every dead entry forever.
// Expiry raises the view's *adoption floor*: entries at least as old as
// anything ever expired are refused re-adoption. Without the floor, a
// full-view exchange racing an expiry sweep could re-adopt a stale entry
// that a delta exchange provably skips, and the two modes would diverge;
// with it, both modes reject exactly the entries expiry dropped, and the
// only-shrink-bytes contract holds under ttl/cap expiry too.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace delaylb::dist {

/// One known (server, load) fact: the owner's id, its load, the owner's
/// version counter for that load, and the owner's simulation time when it
/// produced this version (strictly increasing per owner, see above).
struct GossipEntry {
  double load = 0.0;
  double stamp = 0.0;
  std::uint64_t version = 0;
  std::uint32_t id = 0;
};

/// Digest level marking a bucket with at least one server this view has
/// never heard from: nothing about the bucket is proven, ship everything.
inline constexpr std::uint16_t kDigestIncomplete = 0xFFFF;

/// Load sentinel of a *tombstone* entry: a server that announced its
/// departure publishes its own entry one final time with this load. A
/// tombstone is an ordinary versioned entry — it rides the same quad wire
/// format, digests, merges, and expiry as a live load, so the delta
/// reconciliation proofs apply to it unchanged. Consumers that interpret
/// loads (partner selection, drain targeting) must skip entries for which
/// IsTombstone() holds. A departed server that rejoins supersedes its own
/// tombstone with the next UpdateSelf (strictly larger version), and an
/// expired tombstone can never resurrect the server: expiry raises the
/// adoption floor past the tombstone's stamp, and every pre-departure
/// live entry carries an older per-owner stamp than the tombstone, so the
/// floor refuses it (see the resurrect-never test in test_membership).
inline constexpr double kTombstoneLoad = -1.0;

/// True when a (possibly piggybacked) load value marks a departed server.
inline constexpr bool IsTombstone(double load) noexcept {
  return load < 0.0;
}

/// One server's eventually-consistent sparse view of server loads.
class GossipView {
 public:
  /// Telemetry observer of a MergeEntries call: Adopted fires once per
  /// adopted entry, after the store. Purely observational — a null
  /// observer and any observer behavior leave the merge result (and the
  /// simulation) unchanged.
  class MergeObserver {
   public:
    virtual ~MergeObserver() = default;
    virtual void Adopted(const GossipEntry& entry) = 0;
  };

  /// Versions above this cannot be represented exactly by a double on the
  /// wire; UpdateSelf and the codecs guard it.
  static constexpr std::uint64_t kMaxWireVersion = std::uint64_t{1} << 53;

  /// A view over `m` servers held by server `self`. Starts with no entries
  /// (not even self — the first UpdateSelf creates it).
  GossipView(std::size_t m, std::size_t self);

  /// Universe size m (ids are in [0, m)); entries() is how many are known.
  std::size_t size() const noexcept { return m_; }
  std::size_t entries() const noexcept { return entries_.size(); }
  std::size_t self() const noexcept { return self_; }

  bool Knows(std::size_t j) const noexcept { return Find(j) != nullptr; }
  /// Believed load of server j; 0 when j is unknown.
  double load(std::size_t j) const noexcept {
    const GossipEntry* e = Find(j);
    return e != nullptr ? e->load : 0.0;
  }
  /// Version counter held for j; 0 when unknown (owners start at 1).
  std::uint64_t version(std::size_t j) const noexcept {
    const GossipEntry* e = Find(j);
    return e != nullptr ? e->version : 0;
  }
  /// Stamp held for j; 0 when unknown.
  double stamp(std::size_t j) const noexcept {
    const GossipEntry* e = Find(j);
    return e != nullptr ? e->stamp : 0.0;
  }
  /// All known entries in ascending id order.
  std::span<const GossipEntry> known() const noexcept { return entries_; }

  /// Records a new local load: bumps this server's version and stamps it
  /// with `now` (nudged one ulp past the previous stamp if `now` has not
  /// advanced, keeping per-owner stamps strictly increasing). Throws
  /// std::overflow_error at kMaxWireVersion.
  void UpdateSelf(double load, double now);

  /// Single-entry merge: adopts (load, version, stamp) for server `j` iff
  /// the version is strictly newer than the stored one and the stamp
  /// clears the adoption floor. Returns true when adopted. This is how
  /// every protocol message doubles as gossip about its sender. Throws if
  /// `j` is out of range.
  bool Observe(std::size_t j, double load, std::uint64_t version,
               double stamp);

  /// The version-vector digest: `buckets` 16-bit levels (clamped to
  /// [1, m]; 0 selects one bucket per id — exact per-entry proofs), where
  /// level b = min version over bucket b, saturated at 0xFFFE, or
  /// kDigestIncomplete when the view is missing any id of the bucket.
  std::vector<std::uint16_t> PackDigest(std::size_t buckets) const;

  /// True when the held entry for j is a departure tombstone.
  bool Tombstoned(std::size_t j) const noexcept {
    const GossipEntry* e = Find(j);
    return e != nullptr && IsTombstone(e->load);
  }

  /// Every known entry as (id, load, version, stamp) quads in ascending id
  /// order — the full-view wire format.
  std::vector<double> PackEntries() const;

  /// The single entry held for `j` as one (id, load, version, stamp) quad
  /// (empty when j is unknown) — the departure announcement's payload.
  std::vector<double> PackEntry(std::size_t j) const;

  /// Only the entries not provably covered by `digest` (see the soundness
  /// argument above): entry j ships iff its bucket is kDigestIncomplete or
  /// version(j) > level. An empty digest proves nothing and ships
  /// everything. Same quad format as PackEntries.
  std::vector<double> PackEntriesNewerThan(
      std::span<const std::uint16_t> digest) const;

  /// Merges a PackEntries()/PackEntriesNewerThan() buffer: adopts every
  /// entry with a strictly newer version whose stamp clears the adoption
  /// floor. Returns the number adopted. Throws std::invalid_argument on
  /// malformed payloads (ragged quads, ids out of range or not strictly
  /// ascending, inexact versions). `observer` (optional) hears each
  /// adopted entry — the staleness-age telemetry hook.
  std::size_t MergeEntries(std::span<const double> payload,
                           MergeObserver* observer = nullptr);

  /// Expiry sweep: drops every non-self entry with stamp < cutoff, then —
  /// when max_entries > 0 and more remain — evicts the oldest entries by
  /// (stamp, id) until max_entries are left. The self entry is never
  /// dropped. Raises the adoption floor to cover everything dropped (see
  /// above). Returns the number of entries removed.
  std::size_t Expire(double cutoff, std::size_t max_entries);

  /// Stamps strictly below this are refused adoption — the largest expiry
  /// cutoff seen, nudged past the newest cap-evicted stamp. -infinity
  /// until the first Expire.
  double adoption_floor() const noexcept { return floor_; }

  /// Exact-doubles wire codec for version counters. EncodeVersion throws
  /// std::overflow_error above kMaxWireVersion; DecodeVersion throws
  /// std::invalid_argument unless the double is an exact integral version.
  static double EncodeVersion(std::uint64_t version);
  static std::uint64_t DecodeVersion(double wire);

  /// The digest bucket of `id` for a `buckets`-level digest over `m` ids.
  static std::size_t BucketOf(std::size_t id, std::size_t m,
                              std::size_t buckets) noexcept {
    return id * buckets / m;
  }

 private:
  const GossipEntry* Find(std::size_t j) const noexcept;

  std::size_t m_ = 0;
  std::size_t self_ = 0;
  double floor_ = -std::numeric_limits<double>::infinity();
  std::vector<GossipEntry> entries_;  ///< sorted by id
};

}  // namespace delaylb::dist
