#pragma once
// Versioned load gossip: the state each server disseminates in the
// distributed deployment of the MinE algorithm.
//
// Every server keeps a local view of all m server loads together with a
// per-entry version counter. A server bumps its own version whenever its
// load changes (UpdateSelf); merging a peer's view adopts every entry whose
// version is strictly newer. Repeated pairwise merges therefore converge to
// the newest value per entry regardless of exchange order — the standard
// anti-entropy argument. The MinE partner-selection proxy only needs loads
// that are approximately current, which is what this layer provides without
// global synchronization.

#include <cstddef>
#include <span>
#include <vector>

namespace delaylb::dist {

/// One server's eventually-consistent view of all server loads.
class GossipView {
 public:
  /// A view of `m` servers held by server `self`; all loads start at 0 with
  /// version 0.
  GossipView(std::size_t m, std::size_t self);

  std::size_t size() const noexcept { return loads_.size(); }
  std::size_t self() const noexcept { return self_; }

  double load(std::size_t j) const noexcept { return loads_[j]; }
  std::span<const double> loads() const noexcept { return loads_; }

  /// Monotone per-entry version counters (doubles so views can be shipped as
  /// one homogeneous payload next to the loads).
  std::span<const double> versions() const noexcept { return versions_; }

  /// Records a new local load and bumps this server's version.
  void UpdateSelf(double load);

  /// Single-entry merge: adopts (load, version) for server `j` iff the
  /// version is strictly newer than the stored one. Returns true when
  /// adopted. This is how protocol messages that carry the sender's
  /// (load, version) double as one-entry gossip. Throws if `j` is out of
  /// range.
  bool Observe(std::size_t j, double load, double version);

  /// Adopts every peer entry with a strictly newer version. Returns the
  /// number of entries updated. Throws if the sizes do not match.
  std::size_t Merge(std::span<const double> peer_loads,
                    std::span<const double> peer_versions);

  /// Serializes the view into one homogeneous buffer — the m loads followed
  /// by the m versions — so a gossip exchange ships a single message.
  std::vector<double> PackPayload() const;

  /// Merge() from a PackPayload()-format buffer (2m doubles). Returns the
  /// number of entries updated. Throws if the size does not match.
  std::size_t MergePayload(std::span<const double> payload);

 private:
  std::size_t self_ = 0;
  std::vector<double> loads_;
  std::vector<double> versions_;
};

}  // namespace delaylb::dist
