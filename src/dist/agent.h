#pragma once
// The per-server agent of the distributed MinE deployment.
//
// Each agent owns exactly one column of the global allocation ("everything
// running on my server"), an eventually-consistent GossipView of all server
// loads, and a tiny protocol state machine. It never reads another agent's
// state directly: loads arrive by push-pull gossip, allocation columns
// arrive inside balance messages, and the only shared objects are the
// immutable Instance (speeds/latencies — out-of-band topology) and a
// read-only PairOrderCache derived from it.
//
// Periodically the agent picks a balance partner off its *local view* —
// argmax of the same constant-time bulk-transfer proxy the synchronous
// engine's kFast policy uses, computed on believed (possibly stale) loads,
// with a random exploration probe mixed in because the proxy is blind to
// per-organization latency structure — and runs the two-party handshake of
// message.h, executing Algorithm 1 (core::BalanceColumns) on the exchanged
// columns.
//
// Crash interleavings. The responder applies its half of an exchange when
// it sends the Reply and keeps an undo snapshot; the initiator applies when
// the Reply arrives and then Commits. Because the network reports a drop to
// the sender one return latency after the would-be delivery instant
// (failure-detector fiction riding the reverse path — which also keeps
// bounces inside the sharded kernel's conservative lookahead), every
// interleaving resolves to "applied at both ends or neither":
//   - Request bounces (responder crashed): initiator aborts, nothing
//     applied.
//   - Reply bounces (initiator crashed): responder rolls back to the
//     snapshot — nothing applied. The bounce is processed even while the
//     responder itself is crashed (its memory survives; this is the
//     transactional-undo fiction).
//   - Commit bounces (responder crashed after replying): both ends already
//     applied; the responder keeps the surviving undo record at recovery
//     and arms a resolution timeout. When that timeout fires with the
//     record still open, the Reply's delivery instant AND its would-be
//     bounce arrival have both passed (the timeout exceeds the worst
//     round trip), so the Reply either bounced — which erased the record
//     even while the responder was down — or was delivered, meaning the
//     initiator applied: committing is then the only consistent
//     resolution. Recovery must NOT commit eagerly: a crash window
//     shorter than the one-way latency can end while the Reply is still
//     on the wire, and that Reply may yet bounce.
// Open handshakes of either role therefore carry a timeout so a crash
// cannot leave an agent busy (or a record unresolved) forever; the timeout
// exceeds the worst round trip (two one-way latencies bound a delivery
// plus its return-path bounce) and a recovering agent re-arms it, so a
// timeout never races a still-deliverable Reply, Commit, or bounce.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/pair_order_cache.h"
#include "core/pairwise.h"
#include "dist/gossip.h"
#include "dist/message.h"
#include "dist/network.h"
#include "util/rng.h"

namespace delaylb::dist {

struct AgentOptions {
  /// One balance attempt is started every `balance_period` ms (when idle).
  double balance_period = 100.0;
  /// One push-pull gossip exchange every `gossip_period` ms. The paper
  /// recommends gossiping ~log2(m) times per balance period;
  /// RuntimeOptions::auto_gossip_period derives that automatically.
  double gossip_period = 25.0;
  /// A responder rejects a request whose believed load of it is off by more
  /// than this fraction of max(1, actual load) — balancing against a badly
  /// stale view wastes the exchange. Never-heard-from initiators are
  /// exempt (their probe is exploration, not staleness).
  double stale_tolerance = 0.5;
  /// Probability of probing a uniformly random partner instead of the
  /// proxy argmax; also used whenever the proxy sees no positive candidate
  /// (near convergence the bulk proxy is ~0 while per-organization
  /// re-routing can still help).
  double explore_probability = 0.15;
  /// A responder declines exchanges improving SumC by less than this
  /// (absolute), keeping the system quiescent at convergence instead of
  /// shipping columns for noise-level gains.
  double min_gain = 1e-6;
  /// Piggyback the responder's packed GossipView on balance Replies. A
  /// Reply already ships an m-entry allocation column, so adding the 2m
  /// view doubles neither the message count nor its asymptotic size, and
  /// every completed exchange then refreshes the initiator's whole view —
  /// letting deployments spend a smaller dedicated gossip budget for the
  /// same staleness (bench_gossip_ablation quantifies the saving).
  bool piggyback_gossip = true;
  /// Ship balance columns compactly: Requests as sparse (index, value)
  /// pairs when the column is mostly zeros, Replies as deltas against the
  /// Request's column (both ends hold the base, and Algorithm 1 touches
  /// only the organizations it re-routes). Decoded columns carry the
  /// exact doubles of the dense format — only Network::bytes_sent()
  /// changes: the column payloads drop from O(m) to O(touched entries).
  /// Note the default piggyback_gossip still attaches a full 2m-double
  /// view to every Reply, so total bytes per completed handshake remain
  /// O(m) until the gossip payloads are compacted too (ROADMAP item e);
  /// Requests — the majority of balance traffic near convergence, where
  /// most handshakes end in kNoGain — shrink unconditionally.
  bool compact_columns = true;
};

struct AgentStats {
  /// Handshakes that applied an exchange at this agent (either role).
  std::size_t balances_completed = 0;
  /// Handshakes that failed: busy/stale partner, crash bounce, timeout, or
  /// responder rollback.
  std::size_t balances_rejected = 0;
  /// Handshakes declined because Algorithm 1 found no worthwhile gain
  /// (counted at the initiator; neither completed nor rejected).
  std::size_t balances_no_gain = 0;
  /// Push-pull gossip exchanges initiated.
  std::size_t gossip_rounds = 0;
};

/// One server's protocol state machine. Driven entirely by the runtime:
/// timer hooks (StartGossip/StartBalance), message delivery (OnMessage),
/// drop notifications (OnDeliveryFailure), and crash/recovery hooks.
class Agent {
 public:
  /// `order_cache` may be null (latency columns are then copied per call);
  /// when given, it must be built over `instance` and outlive the agent.
  Agent(std::size_t id, const core::Instance& instance,
        const core::PairOrderCache* order_cache, const AgentOptions& options,
        util::Rng rng);

  std::size_t id() const noexcept { return id_; }
  double load() const noexcept { return load_; }
  /// This server's allocation column: column()[k] = requests of
  /// organization k currently executed here.
  std::span<const double> column() const noexcept { return column_; }
  const GossipView& view() const noexcept { return view_; }
  const AgentStats& stats() const noexcept { return stats_; }
  /// True while a balance handshake this agent participates in is open.
  bool busy() const noexcept {
    return initiator_.active || responder_.active;
  }
  /// True while this agent has applied its half of an exchange whose
  /// Commit has not arrived yet — the only protocol state during which the
  /// global allocation can be non-conserved (the transfer is on the wire).
  bool has_uncommitted_exchange() const noexcept {
    return responder_.active;
  }

  /// Gossip timer: push-pull exchange with a uniformly random reachable
  /// peer. No-op when there is none.
  void StartGossip(Network& network);

  /// Balance timer: select a partner off the local view and open a
  /// handshake. Returns the handshake id (the runtime arms the timeout for
  /// it), or 0 when nothing was started (busy, or no peer).
  std::uint64_t StartBalance(Network& network);

  void OnMessage(const Message& message, Network& network);

  /// The network could not deliver `message` (crashed or unreachable
  /// destination); `message` is the original outbound message.
  void OnDeliveryFailure(const Message& message, Network& network);

  /// Resolution timeout for `handshake`; ignored when that handshake has
  /// already resolved. Never invoked while this agent is crashed. An open
  /// initiator record is cleared as rejected (nothing came back); an open
  /// responder record is committed (see the crash argument above: at this
  /// point the Reply was provably delivered).
  void OnBalanceTimeout(std::uint64_t handshake);

  void OnCrash();

  /// Recovery: bumps and re-announces the view (immediate gossip) and
  /// returns the handshake id whose timeout the runtime must re-arm
  /// (0 when no handshake is open).
  std::uint64_t OnRecover(Network& network);

 private:
  void HandleGossipPush(const Message& message, Network& network);
  void HandleBalanceRequest(const Message& message, Network& network);
  void HandleBalanceReply(const Message& message, Network& network);
  void HandleBalanceCommit(const Message& message);
  void HandleBalanceAbort(const Message& message);
  void SendAbort(const Message& request, AbortReason reason,
                 Network& network);

  /// A message skeleton stamped with the sender's current (load, version)
  /// — the single-entry gossip every protocol message carries.
  Message MakeMessage(MessageKind kind, std::size_t to) const;

  /// Proxy argmax over believed loads, or a random exploration probe; id_
  /// when no peer is available.
  std::size_t SelectPartner();
  /// core::BulkTransferProxy on believed loads — the same formula the
  /// synchronous engine's kFast policy uses on exact ones.
  double ProxyScore(std::size_t candidate, double believed_load) const;

  void SetColumn(std::span<const double> column);

  std::size_t id_;
  const core::Instance* instance_;
  const core::PairOrderCache* order_cache_;
  AgentOptions options_;
  util::Rng rng_;

  std::vector<double> column_;  ///< my column of the r matrix
  double load_ = 0.0;           ///< sum of column_
  GossipView view_;
  std::vector<std::uint32_t> peers_;  ///< reachable (both ways) partners

  struct InitiatorState {
    bool active = false;
    std::uint64_t handshake = 0;
    std::size_t partner = 0;
  };
  struct ResponderState {
    bool active = false;
    std::uint64_t handshake = 0;
    std::size_t partner = 0;
    std::vector<double> undo_column;  ///< pre-apply snapshot for rollback
  };
  InitiatorState initiator_;
  ResponderState responder_;
  std::uint64_t next_handshake_ = 0;

  core::PairBalanceWorkspace workspace_;
  /// Decode scratch for compact column payloads (see message.h codecs).
  std::vector<double> peer_column_;
  std::vector<double> decoded_column_;
  AgentStats stats_;
};

}  // namespace delaylb::dist
