#pragma once
// The per-server agent of the distributed MinE deployment.
//
// Each agent owns exactly one column of the global allocation ("everything
// running on my server"), an eventually-consistent GossipView of all server
// loads, and a tiny protocol state machine. It never reads another agent's
// state directly: loads arrive by gossip, allocation columns arrive inside
// balance messages, and the only shared objects are the immutable Instance
// (speeds/latencies — out-of-band topology), a read-only PairOrderCache
// derived from it, and a per-shard AgentScratch (safe because dispatch
// within a shard is serial).
//
// Gossip wire protocol (three messages per round, in BOTH delta modes, so
// toggling delta_gossip changes bytes on the wire and nothing else):
//
//   a -> b  kGossipPush    delta on: a's digest. delta off: empty.
//   b -> a  kGossipPull    b's entries not provably covered by the push's
//                          digest (all of them when the digest is empty),
//                          plus b's own digest when delta is on.
//   a -> b  kGossipDelta   a's entries not provably covered by the pull's
//                          digest — packed BEFORE merging the pull's
//                          payload, so entries b just shipped are never
//                          echoed back.
//
// The digest soundness argument lives in dist/gossip.h: the shipped set is
// always a superset of the strictly-newer set, so both modes adopt exactly
// the same entries and the traces stay bit-identical except byte counters
// (the DeltaGossipOnlyShrinkBytes contract). Entry expiry participates via
// the view's adoption floor (see GossipView::Expire), so the contract
// survives gossip_ttl/gossip_max_entries too. Adaptive fanout widens on
// merge yield and narrows on dry rounds; it reacts only to the pull/delta
// merges (identical in both modes), never to piggybacked replies.
//
// Periodically the agent picks a balance partner off its *local view* —
// argmax of the same constant-time bulk-transfer proxy the synchronous
// engine's kFast policy uses, computed on believed (possibly stale) loads,
// with a random exploration probe mixed in because the proxy is blind to
// per-organization latency structure — and runs the two-party handshake of
// message.h, executing Algorithm 1 (core::BalanceColumns) on the exchanged
// columns.
//
// Crash interleavings. The responder applies its half of an exchange when
// it sends the Reply and keeps an undo snapshot; the initiator applies when
// the Reply arrives and then Commits. Because the network reports a drop to
// the sender one return latency after the would-be delivery instant
// (failure-detector fiction riding the reverse path — which also keeps
// bounces inside the sharded kernel's conservative lookahead), every
// interleaving resolves to "applied at both ends or neither":
//   - Request bounces (responder crashed): initiator aborts, nothing
//     applied.
//   - Reply bounces (initiator crashed): responder rolls back to the
//     snapshot — nothing applied. The bounce is processed even while the
//     responder itself is crashed (its memory survives; this is the
//     transactional-undo fiction).
//   - Commit bounces (responder crashed after replying): both ends already
//     applied; the responder keeps the surviving undo record at recovery
//     and arms a resolution timeout. When that timeout fires with the
//     record still open, the Reply's delivery instant AND its would-be
//     bounce arrival have both passed (the timeout exceeds the worst
//     round trip), so the Reply either bounced — which erased the record
//     even while the responder was down — or was delivered, meaning the
//     initiator applied: committing is then the only consistent
//     resolution. Recovery must NOT commit eagerly: a crash window
//     shorter than the one-way latency can end while the Reply is still
//     on the wire, and that Reply may yet bounce.
// Open handshakes of either role therefore carry a timeout so a crash
// cannot leave an agent busy (or a record unresolved) forever; the timeout
// exceeds the worst round trip (two one-way latencies bound a delivery
// plus its return-path bounce) and a recovering agent re-arms it, so a
// timeout never races a still-deliverable Reply, Commit, or bounce.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/pair_order_cache.h"
#include "core/pairwise.h"
#include "dist/gossip.h"
#include "dist/membership.h"
#include "dist/message.h"
#include "dist/network.h"
#include "dist/telemetry.h"
#include "util/rng.h"

namespace delaylb::dist {

/// Pairwise kernel an agent runs when it responds to a balance request.
enum class LocalEngine : std::uint8_t {
  /// The paper's exact pairwise balance (core::BalanceColumns,
  /// Algorithm 1). Default; all determinism fingerprints assume it.
  kAlgorithm1 = 0,
  /// Iterative proportional scaling on the exchanged columns
  /// (core::BalanceColumnsIps): multiplicative updates with a backtracked
  /// step instead of the exact Lemma-1 pass. Monotone and convergent but
  /// approximate per exchange — the bake-off engine for the runtime's
  /// local decision path.
  kIps = 1,
};

struct AgentOptions {
  /// One balance attempt is started every `balance_period` ms (when idle).
  double balance_period = 100.0;
  /// One gossip round (fanout_ pushes) every `gossip_period` ms. The paper
  /// recommends gossiping ~log2(m) times per balance period;
  /// RuntimeOptions::auto_gossip_period derives that automatically.
  double gossip_period = 25.0;
  /// A responder rejects a request whose believed load of it is off by more
  /// than this fraction of max(1, actual load) — balancing against a badly
  /// stale view wastes the exchange. Never-heard-from initiators are
  /// exempt (their probe is exploration, not staleness).
  double stale_tolerance = 0.5;
  /// Probability of probing a uniformly random partner instead of the
  /// proxy argmax; also used whenever the proxy sees no positive candidate
  /// (near convergence the bulk proxy is ~0 while per-organization
  /// re-routing can still help).
  double explore_probability = 0.15;
  /// A responder declines exchanges improving SumC by less than this
  /// (absolute), keeping the system quiescent at convergence instead of
  /// shipping columns for noise-level gains.
  double min_gain = 1e-6;
  /// Piggyback the responder's view entries on balance Replies, so every
  /// completed exchange doubles as an anti-entropy round for the
  /// initiator. Under delta_gossip the Request carries the initiator's
  /// digest and the Reply ships only entries not provably covered by it
  /// (bench_gossip_ablation quantifies the saving).
  bool piggyback_gossip = true;
  /// Ship balance columns compactly: Requests as sparse (index, value)
  /// pairs when the column is mostly zeros, Replies as deltas against the
  /// Request's column (both ends hold the base, and Algorithm 1 touches
  /// only the organizations it re-routes). Decoded columns carry the
  /// exact doubles of the dense format — only the byte counters change:
  /// the column payloads drop from O(m) to O(touched entries).
  bool compact_columns = true;
  /// Delta-reconciled gossip (the version-vector wire format): exchanges
  /// open with a PackDigest summary and ship only entries not provably
  /// covered by it, O(churn) per round instead of O(m). Toggling this
  /// changes byte counters only — message counts, merges, and traces are
  /// bit-identical either way (see the protocol comment above).
  bool delta_gossip = true;
  /// Digest resolution: 0 (the default) uses one bucket per server —
  /// exact per-entry proofs at 2 bytes each, still 1/16 the cost of the
  /// 32-byte entry quad it saves. Sub-linear values (e.g. 4096 at
  /// m = 50,000) bound digest memory/bytes at the price of coarser
  /// proofs.
  std::size_t digest_buckets = 0;
  /// Entry expiry: > 0 drops view entries whose stamp is older than this
  /// horizon (ms) at every gossip round. 0 disables. Expired entries are
  /// also refused re-adoption (the view's floor), which is what keeps
  /// delta-on/off traces identical under expiry.
  double gossip_ttl = 0.0;
  /// Entry cap: > 0 evicts the oldest entries beyond this count at every
  /// gossip round (self exempt). 0 disables. Required at m = 50,000,
  /// where uncapped views cost 32 bytes x m per agent.
  std::size_t gossip_max_entries = 0;
  /// Adaptive fanout bounds: every gossip round pushes to `fanout`
  /// distinct draws, where fanout moves up on rounds whose pull/delta
  /// merge adopted entries and down on dry ones, staying within
  /// [fanout_min, fanout_max]. Equal bounds (the default) disable
  /// adaptation.
  std::size_t fanout_min = 1;
  std::size_t fanout_max = 1;
  /// Tombstone announcements sent at departure (dist/membership.h): the
  /// leaver pushes its own tombstone entry to this many random peers as
  /// it deregisters, seeding the rumor; digest reconciliation spreads it
  /// from there.
  std::size_t departure_fanout = 3;
  /// Pairwise kernel used to answer balance requests (see LocalEngine).
  /// Anything other than kAlgorithm1 changes the simulated history, so the
  /// recorded determinism fingerprints only apply to the default.
  LocalEngine local_engine = LocalEngine::kAlgorithm1;
};

struct AgentStats {
  /// Handshakes that applied an exchange at this agent (either role).
  std::size_t balances_completed = 0;
  /// Handshakes that failed: busy/stale partner, crash bounce, timeout, or
  /// responder rollback.
  std::size_t balances_rejected = 0;
  /// Handshakes declined because Algorithm 1 found no worthwhile gain
  /// (counted at the initiator; neither completed nor rejected).
  std::size_t balances_no_gain = 0;
  /// Gossip pushes initiated (fanout counts individually).
  std::size_t gossip_rounds = 0;
  /// View entries adopted from pull/delta merges; dropped by expiry.
  std::size_t gossip_adopted = 0;
  std::size_t gossip_expired = 0;
  /// Joins bootstrapped through a seed's handshake vs. solo fallbacks
  /// (dead/unreachable seed, or no other member scheduled).
  std::size_t joins_completed = 0;
  std::size_t join_fallbacks = 0;
  /// Drain column handoffs (counted at both ends of each transfer).
  std::size_t drain_handoffs = 0;
};

/// Decode/balance scratch shared by every agent of one PDES shard —
/// dispatch within a shard is serial, so sharing is race-free. Sharing is
/// what keeps the m = 50,000 run affordable: these buffers are O(m) each,
/// and per-agent copies would cost O(m^2) memory.
struct AgentScratch {
  core::PairBalanceWorkspace workspace;
  std::vector<double> peer_column;
  std::vector<double> decoded_column;
};

/// One server's protocol state machine. Driven entirely by the runtime:
/// timer hooks (StartGossip/StartBalance), message delivery (OnMessage),
/// drop notifications (OnDeliveryFailure), and crash/recovery hooks.
class Agent {
 public:
  /// `order_cache` may be null (latency columns are then copied per call);
  /// when given, it must be built over `instance` and outlive the agent.
  /// `scratch` may be null (the agent then owns a private scratch); when
  /// given, it must outlive the agent and only be shared among agents
  /// whose events dispatch serially (same shard). `telemetry` (optional)
  /// is the observability endpoint for this agent's shard; a default
  /// lane records nothing.
  Agent(std::size_t id, const core::Instance& instance,
        const core::PairOrderCache* order_cache, const AgentOptions& options,
        util::Rng rng, AgentScratch* scratch = nullptr,
        TelemetryLane telemetry = {});

  std::size_t id() const noexcept { return id_; }
  double load() const noexcept { return load_; }
  /// Membership lifecycle (dist/membership.h). Agents construct as
  /// members; the runtime Deactivate()s ids outside the initial member
  /// set and drives joins/leaves through the hooks below.
  MemberState state() const noexcept { return state_; }
  /// Absent agents run no timers and answer no traffic.
  bool active() const noexcept { return state_ != MemberState::kAbsent; }
  bool draining() const noexcept {
    return state_ == MemberState::kDraining;
  }
  /// This server's allocation column: column()[k] = requests of
  /// organization k currently executed here.
  std::span<const double> column() const noexcept { return column_; }
  const GossipView& view() const noexcept { return view_; }
  const AgentStats& stats() const noexcept { return stats_; }
  /// Current gossip fanout (within [fanout_min, fanout_max]).
  std::size_t fanout() const noexcept { return fanout_; }
  /// True while a balance handshake this agent participates in is open.
  bool busy() const noexcept {
    return initiator_.active || responder_.active;
  }
  /// True while this agent has applied its half of an exchange whose
  /// Commit has not arrived yet — the only protocol state during which the
  /// global allocation can be non-conserved (the transfer is on the wire).
  bool has_uncommitted_exchange() const noexcept {
    return responder_.active;
  }

  /// Gossip timer: expiry sweep, then `fanout()` digest pushes to
  /// uniformly random reachable peers. No-op when there is none.
  void StartGossip(Network& network);

  /// Balance timer: select a partner off the local view and open a
  /// handshake. Returns the handshake id (the runtime arms the timeout for
  /// it), or 0 when nothing was started (busy, or no peer).
  std::uint64_t StartBalance(Network& network);

  /// Delivers a protocol message. Returns the handshake id of a follow-up
  /// handshake this delivery opened (a rejected drain retrying toward the
  /// next candidate) — the runtime arms its resolution timeout — or 0.
  std::uint64_t OnMessage(const Message& message, Network& network);

  /// The network could not deliver `message` (crashed or unreachable
  /// destination); `message` is the original outbound message. Same
  /// return contract as OnMessage (a bounced drain retries immediately).
  std::uint64_t OnDeliveryFailure(const Message& message, Network& network);

  /// Resolution timeout for `handshake`; ignored when that handshake has
  /// already resolved. Never invoked while this agent is crashed. An open
  /// initiator record is cleared as rejected (nothing came back); an open
  /// responder record is committed (see the crash argument above: at this
  /// point the Reply was provably delivered). `now` is the timeout
  /// event's own timestamp (the agent has no other clock here).
  void OnBalanceTimeout(std::uint64_t handshake, double now);

  void OnCrash();

  /// Recovery: bumps and re-announces the view (immediate gossip) and
  /// returns the handshake id whose timeout the runtime must re-arm
  /// (0 when no handshake is open). No-op for an absent agent.
  std::uint64_t OnRecover(Network& network);

  // Membership hooks (see membership.h for the protocol overview). All
  // are invoked by the runtime's dispatch on this agent's shard.

  /// Construction-time deregistration of an id outside the initial member
  /// set: empties the column and parks the agent at kAbsent. Must not be
  /// called once the simulation has started.
  void Deactivate();

  /// kEvJoin dispatch: (re)activates the agent. `first` seeds the column
  /// with the organization's own demand (the paper's starting state); a
  /// rejoin starts empty — the demand was drained away on leave. With a
  /// live `seed` this opens the join handshake toward it and returns the
  /// handshake id (the runtime arms the resolution timeout); otherwise —
  /// seed == id(), unreachable seed, or `crashed` (the join fires inside
  /// one of our own crash windows) — the agent completes a solo join
  /// immediately and returns 0.
  std::uint64_t OnJoin(std::size_t seed, bool first, bool crashed,
                       Network& network);

  /// kEvLeave dispatch: flips a member (or a still-joining agent) to
  /// kDraining. Every subsequent balance tick runs StartDrain instead of
  /// StartBalance until the column is empty and the agent departs.
  void OnLeave();

  /// Balance tick of a draining agent: hand the whole column to one of
  /// the least-loaded members we know of (retrying every tick on
  /// rejection), or — once the column is empty — emit the departure
  /// tombstone and go absent. Returns the open handshake id, or 0.
  std::uint64_t StartDrain(Network& network);

  /// A join scheduled onto a still-draining agent cancels the departure.
  /// Immediately when no drain handshake is open (back to kMember,
  /// keeping whatever column remains); with the column already on the
  /// wire the cancellation is deferred to the handshake's resolution — a
  /// successful drain then re-enters membership empty (exactly a rejoin's
  /// starting state) instead of departing, a failed one keeps the column.
  /// False only for a non-draining agent (the join is a no-op there).
  bool CancelLeave() noexcept;

  /// kEvLoadDelta dispatch: the organization's demand changes by `delta`
  /// at its home server's local share (clamped at zero — demand that was
  /// already rebalanced away cannot be recalled locally).
  void ApplyLoadDelta(double delta, double now);

  /// True exactly once after this agent departed during the event just
  /// dispatched; the runtime then deregisters the id and retires its
  /// timer chains. Clears the flag.
  bool ConsumeDeparted() noexcept {
    const bool departed = departed_pending_;
    departed_pending_ = false;
    return departed;
  }

 private:
  void HandleGossipPush(const Message& message, Network& network);
  void HandleGossipPull(const Message& message, Network& network);
  void HandleBalanceRequest(const Message& message, Network& network);
  void HandleBalanceReply(const Message& message, Network& network);
  void HandleBalanceCommit(const Message& message);
  std::uint64_t HandleBalanceAbort(const Message& message, Network& network);
  void HandleJoinRequest(const Message& message, Network& network);
  void HandleJoinReply(const Message& message, Network& network);
  void HandleDrainRequest(const Message& message, Network& network);
  void HandleDrainReply(const Message& message, Network& network);
  void SendAbort(const Message& request, AbortReason reason,
                 Network& network);

  /// Shared Algorithm-1 step of the balance and join handshakes: decodes
  /// the initiator's column out of `message` (leaving it in
  /// `initiator_column`), assembles the ColumnBalanceInput with this
  /// server as j, and runs core::BalanceColumns in the shared workspace.
  core::PairBalanceResult BalanceAgainst(
      const Message& message, std::span<const double>& initiator_column);

  /// Least-loaded (believed load / speed) live member in the view, ties
  /// to the lower id; a random peer when the view offers no candidate;
  /// id_ when there is no peer at all.
  std::size_t SelectDrainTarget();

  /// Resolves a join attempt: kJoining -> kMember (unless a leave already
  /// flipped us to kDraining) and counts the outcome at time `now`.
  void CompleteJoin(bool via_seed, double now);

  /// Emits the departure tombstone to departure_fanout random peers and
  /// goes absent; sets the departed flag for ConsumeDeparted.
  void Depart(Network& network);

  /// A message skeleton stamped with the sender's current
  /// (load, version, stamp) — the single-entry gossip every protocol
  /// message carries.
  Message MakeMessage(MessageKind kind, std::size_t to) const;

  /// One step of the fanout controller, fed the adopted count of a
  /// pull/delta merge. Identical in both delta modes because the shipped
  /// set is a superset of the adopted set either way.
  void AdaptFanout(std::size_t adopted);

  /// This agent's digest of its own view (delta_gossip wire format).
  std::vector<std::uint16_t> PackOwnDigest() const;

  /// Uniformly random reachable peer; requires peer_count_ > 0. When all
  /// other servers are mutually reachable no peer list is materialized —
  /// the draw maps below(m - 1) around id_ (bit-identical to indexing the
  /// old explicit list).
  std::size_t RandomPeer();
  bool PeerReachable(std::size_t j) const noexcept;

  /// Proxy argmax over believed loads, or a random exploration probe; id_
  /// when no peer is available.
  std::size_t SelectPartner();
  /// core::BulkTransferProxy on believed loads — the same formula the
  /// synchronous engine's kFast policy uses on exact ones.
  double ProxyScore(std::size_t candidate, double believed_load) const;

  void SetColumn(std::span<const double> column, double now);

  std::size_t id_;
  const core::Instance* instance_;
  const core::PairOrderCache* order_cache_;
  AgentOptions options_;
  util::Rng rng_;

  std::vector<double> column_;  ///< my column of the r matrix
  double load_ = 0.0;           ///< sum of column_
  GossipView view_;
  /// Reachable (both ways) partners; empty when dense_peers_ (everyone).
  std::vector<std::uint32_t> peers_;
  bool dense_peers_ = false;
  std::size_t peer_count_ = 0;
  std::size_t fanout_ = 1;

  struct InitiatorState {
    bool active = false;
    std::uint64_t handshake = 0;
    std::size_t partner = 0;
    /// Which request opened the handshake: resolution of a failure
    /// (abort, bounce, timeout) branches on it — balance/drain retry on
    /// the next tick, a join falls back to a solo join.
    MessageKind kind = MessageKind::kBalanceRequest;
    /// Sim time the request was sent — the handshake-latency telemetry
    /// measures resolution against it.
    double opened_at = 0.0;
  };
  struct ResponderState {
    bool active = false;
    std::uint64_t handshake = 0;
    std::size_t partner = 0;
    std::vector<double> undo_column;  ///< pre-apply snapshot for rollback
  };
  InitiatorState initiator_;
  ResponderState responder_;
  std::uint64_t next_handshake_ = 0;
  MemberState state_ = MemberState::kMember;
  bool departed_pending_ = false;
  /// A rejoin arrived while the drain column was on the wire: the
  /// departure is canceled at the handshake's resolution (CancelLeave).
  bool cancel_pending_ = false;

  AgentScratch* scratch_ = nullptr;
  std::unique_ptr<AgentScratch> owned_scratch_;  ///< fallback when unshared
  AgentStats stats_;
  TelemetryLane obs_;  ///< default lane: observability off

};

}  // namespace delaylb::dist
