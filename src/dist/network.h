#pragma once
// Simulated message-passing network for the distributed runtime.
//
// Delivery is delayed by the instance's one-way latency matrix on the
// shared sim::EventQueue (the DES kernel also used by the Appendix-B RTT
// experiment). The network owns the in-flight message store and the crash
// flags: a message whose destination is crashed *at delivery time* is
// dropped and the drop is reported back to the sender — the simulation's
// stand-in for a failure detector / connection reset, which is what lets
// the balance handshake resolve every crash interleaving without
// distributed-commit machinery (see agent.h). Unreachable destinations
// (latency = infinity, the trust-relationship extension) bounce the same
// way with zero delay.
//
// All counters are exact: messages_sent == messages_delivered +
// messages_dropped + in_flight at every instant, which the runtime tests
// check against the snapshot accounting.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dist/message.h"
#include "net/latency_matrix.h"
#include "sim/event_queue.h"

namespace delaylb::dist {

/// Latency-delayed, crash-aware message transport on a shared event queue.
class Network {
 public:
  /// Delivery events are pushed into `queue` with `message_event_type` and
  /// the in-flight message id in SimEvent::a; the driver hands the id back
  /// to Deliver() when the event pops. Both references must outlive the
  /// network.
  Network(const net::LatencyMatrix& latency, sim::EventQueue& queue,
          int message_event_type);

  /// Queues `msg` for delivery at now + c(from, to). An unreachable
  /// destination is scheduled as an immediate bounce instead.
  void Send(Message msg);

  struct Delivery {
    /// False when the destination was crashed at delivery time (or
    /// unreachable): the message was dropped and the sender should be
    /// notified via Agent::OnDeliveryFailure.
    bool delivered = false;
    Message message;
  };

  /// Consumes the in-flight message for a popped delivery event, applying
  /// the crash/unreachable drop rule at delivery time.
  Delivery Deliver(std::uint64_t message_id);

  void SetCrashed(std::size_t server, bool crashed);
  bool crashed(std::size_t server) const noexcept {
    return crashed_[server] != 0;
  }

  std::size_t messages_sent() const noexcept { return sent_; }
  std::size_t messages_delivered() const noexcept { return delivered_; }
  std::size_t messages_dropped() const noexcept { return dropped_; }
  std::size_t in_flight() const noexcept { return pending_.size(); }

 private:
  struct Pending {
    Message message;
    bool unreachable = false;
  };

  const net::LatencyMatrix& latency_;
  sim::EventQueue& queue_;
  int message_event_type_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<std::uint8_t> crashed_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace delaylb::dist
