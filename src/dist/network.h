#pragma once
// Simulated message-passing transport for the (sharded) distributed
// runtime.
//
// Delivery is delayed by the instance's one-way latency matrix on the
// conservative PDES kernel (sim/pdes.h): a message from i to j becomes a
// kEvMessage event keyed by (send time + c(i,j), sender, sender-sequence)
// on j's shard — the message itself rides inside the event, so delivery
// never touches a store shared between shards. The network owns the crash
// flags and the per-shard accounting; a message whose destination is
// crashed *at delivery time* is dropped and a kEvBounce event carries the
// drop back to the sender one return latency later — the simulation's
// stand-in for a failure detector / connection reset, which is what lets
// the balance handshake resolve every crash interleaving without
// distributed-commit machinery (see agent.h; the resolution timeouts
// exceed a full round trip, so they still outlast any bounce).
// Unreachable destinations (latency = infinity, the trust-relationship
// extension) bounce immediately on the sender's own shard.
//
// Accounting is exact and shard-local: every counter is mutated only by
// the shard dispatching the event, and at every window barrier (and any
// quiesced instant) messages_sent == messages_delivered +
// messages_dropped + in_flight, with in_flight equal to the number of
// kEvMessage events actually pending in the kernel — the runtime's
// accounting audit checks the counters against the queues themselves.
// bytes_sent() additionally totals the WireSize of every sent message,
// split by class (control framing vs balance columns vs gossip traffic)
// so the compact column encodings and the delta gossip wire format are
// each visible against the budget they shrink.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/message.h"
#include "dist/shard.h"
#include "net/latency_matrix.h"

namespace delaylb::dist {

/// Latency-delayed, crash-aware message transport on the PDES kernel.
class Network {
 public:
  /// All three references must outlive the network; `plan` and `engine`
  /// must agree on the shard count.
  Network(const net::LatencyMatrix& latency, const ShardPlan& plan,
          RuntimeEngine& engine);

  /// Queues `msg` for delivery at now + c(from, to). Must be called from
  /// the dispatch of msg.from's shard (every protocol send is — agents
  /// only send while handling their own events). An unreachable
  /// destination is scheduled as an immediate same-shard bounce instead.
  void Send(Message msg);

  /// Applies the crash drop rule to a popped kEvMessage event on `shard`
  /// (= the destination's shard). Returns true when the message should be
  /// handed to the destination agent; false when it was dropped, in which
  /// case the bounce back to the sender has been scheduled.
  bool Arrive(std::size_t shard, ShardEvent& event);

  void SetCrashed(std::size_t server, bool crashed);
  bool crashed(std::size_t server) const noexcept {
    return crashed_[server] != 0;
  }

  /// Dynamic membership registration (dist/membership.h): traffic to a
  /// non-member is dropped exactly like traffic to a crashed server — the
  /// id exists in the topology but nothing is listening there. Servers
  /// start as members; the runtime deregisters absent ids at construction
  /// and flips the flag at join dispatch / departure. Like the crash
  /// flags, member_[id] is only ever written by id's own shard (join,
  /// leave, and departure all dispatch there) and only read by deliveries
  /// on id's shard, so the flags never race across shards.
  void SetMember(std::size_t server, bool member);
  bool member(std::size_t server) const noexcept {
    return member_[server] != 0;
  }
  /// Current member count — call only while the engine is quiesced.
  std::size_t members() const noexcept {
    std::size_t count = 0;
    for (const std::uint8_t alive : member_) count += alive != 0;
    return count;
  }

  /// Current simulation time on `server`'s shard — the timestamp of the
  /// event being dispatched. Agents use it to stamp gossip entries
  /// (identical for every shard plan, since it is the event's own time).
  double now(std::size_t server) const noexcept {
    return engine_.now(plan_.shard_of[server]);
  }

  // Counter sums — call while the engine is quiesced (between RunUntil
  // calls or from the window hook).
  std::size_t messages_sent() const noexcept { return Sum(&Counters::sent); }
  std::size_t messages_delivered() const noexcept {
    return Sum(&Counters::delivered);
  }
  std::size_t messages_dropped() const noexcept {
    return Sum(&Counters::dropped);
  }
  /// Total wire bytes sent, accumulated independently of the per-class
  /// counters (one WireSize add per send): the runtime's snapshot paths
  /// assert it equals the sum of the four class counters, so a message
  /// class added to WireSize but missed in WireBytes (or vice versa)
  /// trips immediately instead of silently leaking bytes out of the
  /// per-class breakdown.
  std::size_t bytes_sent() const noexcept {
    return Sum(&Counters::bytes_total);
  }
  /// Per-class byte totals (see WireBytes in message.h): fixed framing,
  /// balance-column payloads, gossip traffic (digests, entry lists,
  /// piggybacked views), and membership-protocol traffic (join/drain
  /// handshakes plus tombstone quads wherever they ride).
  std::size_t bytes_control() const noexcept {
    return Sum(&Counters::bytes_control);
  }
  std::size_t bytes_column() const noexcept {
    return Sum(&Counters::bytes_column);
  }
  std::size_t bytes_gossip() const noexcept {
    return Sum(&Counters::bytes_gossip);
  }
  std::size_t bytes_membership() const noexcept {
    return Sum(&Counters::bytes_membership);
  }
  std::size_t in_flight() const noexcept {
    std::int64_t pending = 0;
    for (const Counters& c : counters_) pending += c.in_flight;
    return static_cast<std::size_t>(pending);
  }

 private:
  /// One cache line of counters per shard: only that shard's worker
  /// writes it during a window.
  struct alignas(64) Counters {
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t bytes_control = 0;  ///< fixed per-message framing
    std::size_t bytes_column = 0;   ///< balance-column payloads
    std::size_t bytes_gossip = 0;   ///< digests, entry lists, piggybacks
    std::size_t bytes_membership = 0;  ///< join/drain payloads, tombstones
    std::size_t bytes_total = 0;  ///< WireSize sum, independent of classes
    std::int64_t in_flight = 0;  ///< sends minus resolutions, per shard
  };

  template <typename T>
  std::size_t Sum(T Counters::* field) const noexcept {
    std::size_t total = 0;
    for (const Counters& c : counters_) total += c.*field;
    return total;
  }

  const net::LatencyMatrix& latency_;
  const ShardPlan& plan_;
  RuntimeEngine& engine_;
  std::vector<Counters> counters_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> member_;
  /// Per-agent outbound message counter: the EventKey minor that makes
  /// simultaneous deliveries from one sender totally ordered. Only the
  /// sender's shard touches its entries.
  std::vector<std::uint64_t> send_seq_;
};

}  // namespace delaylb::dist
