#include "dist/network.h"

#include <stdexcept>
#include <utility>

namespace delaylb::dist {

Network::Network(const net::LatencyMatrix& latency, sim::EventQueue& queue,
                 int message_event_type)
    : latency_(latency),
      queue_(queue),
      message_event_type_(message_event_type),
      crashed_(latency.size(), 0) {}

void Network::Send(Message msg) {
  if (msg.from >= latency_.size() || msg.to >= latency_.size()) {
    throw std::invalid_argument("Network::Send: endpoint out of range");
  }
  const double delay = latency_(msg.from, msg.to);
  const bool unreachable = !latency_.Reachable(msg.from, msg.to);
  const std::uint64_t id = next_id_++;
  ++sent_;
  sim::SimEvent event;
  event.time = queue_.now() + (unreachable ? 0.0 : delay);
  event.type = message_event_type_;
  event.a = id;
  pending_.emplace(id, Pending{std::move(msg), unreachable});
  queue_.Push(event);
}

Network::Delivery Network::Deliver(std::uint64_t message_id) {
  const auto it = pending_.find(message_id);
  if (it == pending_.end()) {
    throw std::logic_error("Network::Deliver: unknown message id");
  }
  Delivery delivery;
  delivery.message = std::move(it->second.message);
  const bool dropped = it->second.unreachable || crashed(delivery.message.to);
  pending_.erase(it);
  if (dropped) {
    ++dropped_;
  } else {
    ++delivered_;
    delivery.delivered = true;
  }
  return delivery;
}

void Network::SetCrashed(std::size_t server, bool crashed) {
  crashed_.at(server) = crashed ? 1 : 0;
}

}  // namespace delaylb::dist
