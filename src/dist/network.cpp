#include "dist/network.h"

#include <stdexcept>
#include <utility>

namespace delaylb::dist {

Network::Network(const net::LatencyMatrix& latency, const ShardPlan& plan,
                 RuntimeEngine& engine)
    : latency_(latency),
      plan_(plan),
      engine_(engine),
      counters_(plan.shards),
      crashed_(latency.size(), 0),
      member_(latency.size(), 1),
      send_seq_(latency.size(), 0) {
  if (plan.shard_of.size() != latency.size() ||
      engine.shards() != plan.shards) {
    throw std::invalid_argument("Network: plan/engine/matrix disagree");
  }
}

void Network::Send(Message msg) {
  if (msg.from >= latency_.size() || msg.to >= latency_.size()) {
    throw std::invalid_argument("Network::Send: endpoint out of range");
  }
  const std::size_t src = plan_.shard_of[msg.from];
  const std::uint64_t seq = send_seq_[msg.from]++;
  Counters& counters = counters_[src];
  ++counters.sent;
  const WireBreakdown wire = WireBytes(msg);
  counters.bytes_control += wire.control;
  counters.bytes_column += wire.column;
  counters.bytes_gossip += wire.gossip;
  counters.bytes_membership += wire.membership;
  counters.bytes_total += WireSize(msg);

  ShardEvent event;
  event.message = std::move(msg);
  const std::uint32_t from = event.message.from;
  const std::uint32_t to = event.message.to;
  if (!latency_.Reachable(from, to)) {
    // Never leaves the sender's shard: bounce at the send instant.
    ++counters.dropped;
    event.type = kEvBounce;
    event.key = {engine_.now(src), kEvBounce, from, seq};
    engine_.Emit(src, src, std::move(event));
    return;
  }
  ++counters.in_flight;
  event.type = kEvMessage;
  event.key = {engine_.now(src) + latency_(from, to), kEvMessage, from, seq};
  engine_.Emit(src, plan_.shard_of[to], std::move(event));
}

bool Network::Arrive(std::size_t shard, ShardEvent& event) {
  Counters& counters = counters_[shard];
  --counters.in_flight;
  const std::uint32_t from = event.message.from;
  const std::uint32_t to = event.message.to;
  if (crashed_[to] == 0 && member_[to] != 0) {
    ++counters.delivered;
    return true;
  }
  ++counters.dropped;
  // The failure notification travels back over the return path (falling
  // back to the forward latency on asymmetric reachability), so a
  // cross-shard bounce respects the conservative lookahead exactly like a
  // regular delivery.
  double back = latency_(to, from);
  if (back == net::kUnreachable) back = latency_(from, to);
  ShardEvent bounce;
  bounce.type = kEvBounce;
  bounce.key = {engine_.now(shard) + back, kEvBounce, from, event.key.minor};
  bounce.message = std::move(event.message);
  engine_.Emit(shard, plan_.shard_of[from], std::move(bounce));
  return false;
}

void Network::SetCrashed(std::size_t server, bool crashed) {
  crashed_.at(server) = crashed ? 1 : 0;
}

void Network::SetMember(std::size_t server, bool member) {
  member_.at(server) = member ? 1 : 0;
}

}  // namespace delaylb::dist
