#pragma once
// Elastic membership for the distributed runtime.
//
// The paper's protocol is described over a fixed server set; this header
// (plus the join/drain state machine in agent.h and the scheduling hooks
// in runtime.h) extends it to clusters that grow and shrink mid-run
// without giving up any of the existing guarantees:
//
//  * The id universe stays FIXED — every server that will ever exist has
//    an id in [0, m) and a row in the latency matrix — but membership is
//    dynamic: an id is absent (nothing listening, traffic dropped like a
//    crash), joining, a member, or draining toward departure. Keeping the
//    universe fixed is what preserves both the PDES shard plan (placement
//    of future joiners is decided up front by the member-aware
//    PlanShards, so the conservative lookahead never changes mid-run) and
//    the master-rng draw order (every agent is constructed, members or
//    not, so default runs are bit-identical to the pre-elasticity
//    runtime).
//
//  * Join is a balance handshake in different clothes: the joiner sends
//    its column and view digest to a bootstrap seed (its nearest
//    scheduled member), the seed runs the usual BalanceColumns exchange
//    and replies with the joiner's balanced column PLUS the delta of its
//    gossip view — one round trip bootstraps both the load and the
//    rumor mill. Every crash interleaving resolves through the same
//    request/reply/commit + bounce/timeout machinery as a balance
//    exchange (agent.h); a dead or unreachable seed degrades to a solo
//    join (the joiner simply starts gossiping and is found organically).
//
//  * Leave drains first, announces second: a draining server hands its
//    whole column to the least-loaded member it knows (repeating on
//    rejection), and only after its column is empty does it emit its own
//    tombstone (gossip.h) and deregister. Work is therefore conserved
//    through any single departure, and a departure mid-handshake resolves
//    exactly like a crash would.
//
//  * Tombstones are versioned gossip entries (load = kTombstoneLoad) that
//    ride the ordinary digest/delta reconciliation, are superseded by a
//    rejoin's strictly larger self-version, and are GC'd by the same
//    Expire sweep — behind the adoption floor, so expiry can never
//    resurrect a departed server (see gossip.h for the argument).
//
// MembershipDirectory below is the runtime-side bookkeeping: which ids
// are scheduled to be members at any horizon (so join seeds are chosen
// deterministically at schedule time), which ids have ever joined (first
// join claims the organization's demand; a rejoin starts empty — the
// demand was drained away on leave), and the per-id timer epoch that
// retires an agent's gossip/balance timer chains at departure and starts
// fresh ones at rejoin without perturbing any pre-churn event key.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/latency_matrix.h"
#include "util/rng.h"

namespace delaylb::dist {

/// Lifecycle of one server id. kAbsent ids hold no column mass, answer no
/// traffic, and run no timers; kJoining/kDraining ids decline NEW balance
/// work but still resolve handshakes they are party to.
enum class MemberState : std::uint8_t {
  kAbsent = 0,
  kJoining,
  kMember,
  kDraining,
};

const char* ToString(MemberState state) noexcept;

/// Deterministic bootstrap-seed choice for a joiner: the nearest id (by
/// symmetric latency min(c(i,j), c(j,i)), ties to the lower id) whose
/// members[] flag is set, excluding the joiner itself. Returns `joiner`
/// when no other member is scheduled — the solo-join sentinel. Called at
/// ScheduleJoin time against the SCHEDULED member set, so the choice is a
/// pure function of the schedule (bit-identical for every shard/thread
/// count); if the seed has left or crashed by the time the join fires,
/// the join request bounces and the joiner falls back to a solo join.
std::size_t ChooseJoinSeed(const net::LatencyMatrix& latency,
                           const std::vector<std::uint8_t>& members,
                           std::size_t joiner);

/// Derived generator for a (re)joining agent's timer stagger. The
/// construction-time stagger draws come from the master rng in id order;
/// a mid-run join cannot extend that stream (it would shift every later
/// draw), so each join epoch gets its own stream keyed by (seed, id,
/// epoch) — a pure function of the schedule, independent of shard count.
util::Rng TimerStaggerRng(std::uint64_t seed, std::size_t id,
                          std::uint64_t epoch) noexcept;

/// Runtime-side membership bookkeeping (quiesced access only: mutated by
/// ScheduleJoin/ScheduleLeave between RunUntil calls and by the dispatch
/// of membership events, never concurrently).
struct MembershipDirectory {
  /// scheduled_member[id] tracks the member set in SCHEDULE order:
  /// toggled by ScheduleJoin/ScheduleLeave as they are called, it is the
  /// set against which later join seeds are chosen.
  std::vector<std::uint8_t> scheduled_member;
  /// ever_joined[id]: whether id has held its organization's demand at
  /// least once. The first join seeds the agent's column with the
  /// instance load; a rejoin starts empty (the demand was drained away).
  std::vector<std::uint8_t> ever_joined;
  /// Current timer epoch per id. Timer events carry their epoch; a
  /// mismatch means the chain belongs to a departed incarnation and the
  /// event is dropped without re-arming. Epoch 0 is the construction-time
  /// chain, so pre-churn event keys are unchanged.
  std::vector<std::uint64_t> timer_epoch;
  /// EventKey minor for kEvJoin/kEvLeave/kEvLoadDelta, mirroring the
  /// crash-schedule counter.
  std::uint64_t sequence = 0;

  explicit MembershipDirectory(std::size_t m)
      : scheduled_member(m, 1), ever_joined(m, 1), timer_epoch(m, 0) {}
};

}  // namespace delaylb::dist
