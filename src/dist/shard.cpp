#include "dist/shard.h"

#include <algorithm>

#include "net/clustering.h"

namespace delaylb::dist {

ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested) {
  const std::size_t m = latency.size();
  ShardPlan plan;
  plan.shard_of.assign(m, 0);
  if (requested <= 1 || m <= 1) return plan;

  const net::ClusterPlan clusters =
      net::ClusterByLatency(latency, std::min(requested, m));
  if (clusters.clusters <= 1) return plan;

  const double lookahead =
      sim::MinCrossShardLatency(latency, clusters.cluster_of);
  if (!(lookahead > 0.0)) {
    // Defensive: ClusterByLatency co-locates zero-latency pairs, so this
    // only triggers on a malformed plan. Sequential is always correct.
    return plan;
  }
  plan.shard_of = clusters.cluster_of;
  plan.shards = clusters.clusters;
  plan.lookahead = lookahead;
  return plan;
}

}  // namespace delaylb::dist
