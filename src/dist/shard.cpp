#include "dist/shard.h"

#include <algorithm>
#include <stdexcept>

#include "net/clustering.h"

namespace delaylb::dist {
namespace {

/// Symmetric proximity (the planner's metric — a message can cross
/// between two shards along either direction of the pair).
double SymmetricLatency(const net::LatencyMatrix& latency, std::size_t i,
                        std::size_t j) {
  return std::min(latency(i, j), latency(j, i));
}

/// Nearest already-assigned server to `id` by symmetric latency, ties to
/// the lower id; latency.size() when none is assigned.
std::size_t NearestAssigned(const ShardPlan& plan,
                            const net::LatencyMatrix& latency,
                            std::size_t id) {
  const std::size_t m = latency.size();
  std::size_t best = m;
  double best_distance = net::kUnreachable;
  for (std::size_t j = 0; j < m; ++j) {
    if (j == id || plan.shard_of[j] == net::kUnclustered) continue;
    const double d = SymmetricLatency(latency, id, j);
    if (best == m || d < best_distance) {
      best = j;
      best_distance = d;
    }
  }
  return best;
}

}  // namespace

ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested) {
  const std::size_t m = latency.size();
  ShardPlan plan;
  plan.shard_of.assign(m, 0);
  if (requested <= 1 || m <= 1) return plan;

  const net::ClusterPlan clusters =
      net::ClusterByLatency(latency, std::min(requested, m));
  if (clusters.clusters <= 1) return plan;

  const double lookahead =
      sim::MinCrossShardLatency(latency, clusters.cluster_of);
  if (!(lookahead > 0.0)) {
    // Defensive: ClusterByLatency co-locates zero-latency pairs, so this
    // only triggers on a malformed plan. Sequential is always correct.
    return plan;
  }
  plan.shard_of = clusters.cluster_of;
  plan.shards = clusters.clusters;
  plan.lookahead = lookahead;
  return plan;
}

ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested,
                     std::span<const std::uint8_t> members) {
  if (members.empty()) return PlanShards(latency, requested);
  const std::size_t m = latency.size();
  if (members.size() != m) {
    throw std::invalid_argument("PlanShards: member mask size mismatch");
  }
  ShardPlan plan;
  plan.shard_of.assign(m, 0);
  if (requested <= 1 || m <= 1) return plan;

  std::size_t member_count = 0;
  for (const std::uint8_t alive : members) member_count += alive != 0;
  if (member_count <= 1) return plan;

  const net::ClusterPlan clusters = net::ClusterByLatency(
      latency, std::min(requested, member_count), members);
  if (clusters.clusters <= 1) return plan;

  // Join-to-nearest-shard placement for the absent ids (future joiners),
  // in ascending id order: each follows its nearest already-assigned
  // server, so a tight latency group of spares lands whole in one shard
  // just like the member pass's single linkage.
  ShardPlan extended;
  extended.shard_of = clusters.cluster_of;
  extended.shards = clusters.clusters;
  for (std::size_t id = 0; id < m; ++id) {
    if (extended.shard_of[id] != net::kUnclustered) continue;
    const std::size_t anchor = NearestAssigned(extended, latency, id);
    extended.shard_of[id] =
        anchor == m ? 0 : extended.shard_of[anchor];
  }
  // The lookahead is derived over the FULL assignment: a joiner close to
  // a foreign cluster narrows the committed windows (replan) instead of
  // violating the conservative contract mid-run (which ExtendShardPlan
  // would reject). A zero-lookahead outcome collapses to sequential.
  const double lookahead =
      sim::MinCrossShardLatency(latency, extended.shard_of);
  if (!(lookahead > 0.0)) return plan;
  extended.lookahead = lookahead;
  return extended;
}

void ExtendShardPlan(ShardPlan& plan, const net::LatencyMatrix& latency,
                     std::size_t id) {
  const std::size_t m = latency.size();
  if (plan.shard_of.size() != m || id >= m) {
    throw std::invalid_argument("ExtendShardPlan: id/plan size mismatch");
  }
  if (plan.shards <= 1) {
    plan.shard_of[id] = 0;
    return;
  }
  const std::size_t anchor = NearestAssigned(plan, latency, id);
  plan.shard_of[id] =
      anchor == m ? 0 : plan.shard_of[anchor];
  // The running engine's windows were sized by plan.lookahead; admitting
  // an id whose cross-shard latencies undercut it would let a message
  // land inside an already-committed window. Reject, mirroring the
  // kernel's own Emit-horizon guard.
  for (std::size_t j = 0; j < m; ++j) {
    if (j == id || plan.shard_of[j] == net::kUnclustered ||
        plan.shard_of[j] == plan.shard_of[id]) {
      continue;
    }
    const double out = latency(id, j);
    const double back = latency(j, id);
    if ((latency.Reachable(id, j) && out < plan.lookahead) ||
        (latency.Reachable(j, id) && back < plan.lookahead)) {
      plan.shard_of[id] = net::kUnclustered;
      throw std::logic_error(
          "ExtendShardPlan: joining id undercuts the plan's conservative "
          "lookahead — replan with the member-aware PlanShards overload");
    }
  }
}

}  // namespace delaylb::dist
