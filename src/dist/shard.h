#pragma once
// Shard plan and event vocabulary of the sharded DistributedRuntime.
//
// The runtime partitions its agents across the conservative PDES kernel's
// shards (sim/pdes.h). This header defines the two pieces that glue the
// protocol to the kernel:
//
//  * ShardEvent — the runtime's event record. Unlike sim::SimEvent it
//    carries the dist::Message by value: a cross-shard delivery travels
//    through the kernel's staging lanes instead of a shared in-flight
//    store, so no two shards ever touch the same message object.
//    The content-derived EventKey ranks (ShardEventType order) pin the
//    dispatch order of simultaneous events identically for every shard
//    count: crash/recover first (a message arriving at a server's crash
//    instant finds it down), then deliveries and bounces (ordered by
//    sender id + the sender's own outbound counter), then the timers.
//
//  * ShardPlan / PlanShards — the latency-aware assignment: greedy
//    clustering over the latency matrix (net::ClusterByLatency) so that
//    intra-cluster traffic, which dominates under proximity-biased
//    partner selection, stays shard-local, with the conservative
//    lookahead = minimum cross-shard latency. Degenerate plans (k <= 1,
//    tiny m, or a zero lookahead) collapse to the single-shard identity,
//    which runs the exact sequential dispatch loop.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dist/message.h"
#include "net/latency_matrix.h"
#include "sim/pdes.h"

namespace delaylb::dist {

/// Event classes of the sharded runtime. The enum value doubles as the
/// EventKey rank — the fixed dispatch priority among events sharing a
/// timestamp.
enum ShardEventType : std::int32_t {
  kEvCrash = 0,
  kEvRecover,
  kEvMessage,  ///< delivery attempt at message.to's shard
  kEvBounce,   ///< drop notification back at message.from's shard
  kEvGossipTimer,
  kEvBalanceTimer,
  kEvBalanceTimeout,
  // Membership events are appended so every pre-elasticity rank — and
  // with it every recorded trace fingerprint — is unchanged. A message
  // arriving at the same instant as a join therefore still finds the
  // server absent (messages rank first), matching the crash convention.
  kEvJoin,       ///< server a becomes a member (b = bootstrap seed id)
  kEvLeave,      ///< server a starts draining toward departure
  kEvLoadDelta,  ///< organization a's local demand changes by v
};

/// One runtime event. key.major/minor identify the event within its
/// class: (sender, sender-sequence) for kEvMessage/kEvBounce, (agent, 0)
/// for timers, (agent, handshake) for timeouts, (agent, schedule counter)
/// for crash windows — unique among coexisting events, as the kernel's
/// determinism contract requires.
struct ShardEvent {
  sim::EventKey key;
  std::int32_t type = kEvMessage;
  std::uint64_t a = 0;  ///< agent id (timers, timeouts, crash windows)
  std::uint64_t b = 0;  ///< handshake id (timeouts), timer epoch (timers),
                        ///< bootstrap seed (kEvJoin)
  double v = 0.0;       ///< demand delta (kEvLoadDelta)
  Message message;      ///< kEvMessage / kEvBounce payload
};

/// The runtime's kernel instantiation.
using RuntimeEngine = sim::ConservativeEngine<ShardEvent>;

/// Agent-to-shard assignment plus the conservative lookahead it induces.
struct ShardPlan {
  std::vector<std::uint32_t> shard_of;
  std::size_t shards = 1;
  double lookahead = std::numeric_limits<double>::infinity();
};

/// Plans `requested` shards over the latency matrix. Returns the
/// single-shard identity plan (lookahead = infinity) when requested <= 1,
/// the matrix is trivial, or no positive-lookahead split exists.
ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested);

/// Member-aware planning for an elastic cluster: clusters only the ids
/// with members[id] != 0 (the servers alive at construction), then places
/// every absent id — a future joiner — into the nearest member cluster by
/// symmetric latency (the join-to-nearest-shard rule) and re-derives the
/// lookahead over the FULL assignment, so a joiner landing close to a
/// foreign cluster shrinks the windows instead of violating the
/// conservative contract (the replan half of reject-or-replan; the
/// reject half is ExtendShardPlan). An empty `members` span means
/// everyone and is exactly PlanShards(latency, requested). Degenerate
/// outcomes (<= 1 member cluster, zero final lookahead) collapse to the
/// single-shard identity as usual.
ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested,
                     std::span<const std::uint8_t> members);

/// Places `id` into an existing multi-shard plan: assigns it the shard of
/// its nearest assigned server by symmetric latency, then verifies the
/// placement preserves the plan's lookahead — the PDES windows already
/// committed were sized by it, so an id whose cross-shard latencies
/// undercut the lookahead CANNOT be admitted into a running plan. Throws
/// std::logic_error in that case (the reject half of reject-or-replan,
/// matching the kernel's Emit-horizon guard); the caller must then build
/// a fresh plan (and runtime) with the member-aware PlanShards overload.
/// Single-shard plans accept any id trivially.
void ExtendShardPlan(ShardPlan& plan, const net::LatencyMatrix& latency,
                     std::size_t id);

}  // namespace delaylb::dist
