#pragma once
// Shard plan and event vocabulary of the sharded DistributedRuntime.
//
// The runtime partitions its agents across the conservative PDES kernel's
// shards (sim/pdes.h). This header defines the two pieces that glue the
// protocol to the kernel:
//
//  * ShardEvent — the runtime's event record. Unlike sim::SimEvent it
//    carries the dist::Message by value: a cross-shard delivery travels
//    through the kernel's staging lanes instead of a shared in-flight
//    store, so no two shards ever touch the same message object.
//    The content-derived EventKey ranks (ShardEventType order) pin the
//    dispatch order of simultaneous events identically for every shard
//    count: crash/recover first (a message arriving at a server's crash
//    instant finds it down), then deliveries and bounces (ordered by
//    sender id + the sender's own outbound counter), then the timers.
//
//  * ShardPlan / PlanShards — the latency-aware assignment: greedy
//    clustering over the latency matrix (net::ClusterByLatency) so that
//    intra-cluster traffic, which dominates under proximity-biased
//    partner selection, stays shard-local, with the conservative
//    lookahead = minimum cross-shard latency. Degenerate plans (k <= 1,
//    tiny m, or a zero lookahead) collapse to the single-shard identity,
//    which runs the exact sequential dispatch loop.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "dist/message.h"
#include "net/latency_matrix.h"
#include "sim/pdes.h"

namespace delaylb::dist {

/// Event classes of the sharded runtime. The enum value doubles as the
/// EventKey rank — the fixed dispatch priority among events sharing a
/// timestamp.
enum ShardEventType : std::int32_t {
  kEvCrash = 0,
  kEvRecover,
  kEvMessage,  ///< delivery attempt at message.to's shard
  kEvBounce,   ///< drop notification back at message.from's shard
  kEvGossipTimer,
  kEvBalanceTimer,
  kEvBalanceTimeout,
};

/// One runtime event. key.major/minor identify the event within its
/// class: (sender, sender-sequence) for kEvMessage/kEvBounce, (agent, 0)
/// for timers, (agent, handshake) for timeouts, (agent, schedule counter)
/// for crash windows — unique among coexisting events, as the kernel's
/// determinism contract requires.
struct ShardEvent {
  sim::EventKey key;
  std::int32_t type = kEvMessage;
  std::uint64_t a = 0;  ///< agent id (timers, timeouts, crash windows)
  std::uint64_t b = 0;  ///< handshake id (timeouts)
  Message message;      ///< kEvMessage / kEvBounce payload
};

/// The runtime's kernel instantiation.
using RuntimeEngine = sim::ConservativeEngine<ShardEvent>;

/// Agent-to-shard assignment plus the conservative lookahead it induces.
struct ShardPlan {
  std::vector<std::uint32_t> shard_of;
  std::size_t shards = 1;
  double lookahead = std::numeric_limits<double>::infinity();
};

/// Plans `requested` shards over the latency matrix. Returns the
/// single-shard identity plan (lookahead = infinity) when requested <= 1,
/// the matrix is trivial, or no positive-lookahead split exists.
ShardPlan PlanShards(const net::LatencyMatrix& latency,
                     std::size_t requested);

}  // namespace delaylb::dist
