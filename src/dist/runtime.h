#pragma once
// The message-passing DistributedRuntime: the paper's "fully distributed
// query processing system".
//
// A deterministic discrete-event deployment of MinE in which every server
// is an Agent (one allocation column + a gossiped load view + the balance
// handshake) and all dynamic state travels inside Messages delayed by the
// instance's latency matrix. There is no coordinator: servers disseminate
// loads by push-pull gossip run ~log2(m) times per balance period (Section
// IV) and improve the allocation through pairwise Algorithm-1 exchanges
// (Section VI). Crashes can be scheduled; traffic to a crashed server is
// dropped and the protocol degrades gracefully (rejected handshakes) until
// recovery re-announces a fresh view.
//
// Scale-out: the runtime runs on the conservative PDES kernel
// (sim/pdes.h). RuntimeOptions::shards partitions the agents across
// latency-derived clusters (dist/shard.h), each with its own event heap,
// advanced in lock-step windows of width lookahead = min cross-shard
// latency over a util::ThreadPool — the single-threaded dispatch loop is
// simply the shards = 1 instance of the same engine.
//
// Determinism: every event carries a content-derived total-order key and
// every random draw (agent rngs, timer stagger) derives from
// RuntimeOptions::seed, so two runs with the same seed produce identical
// Snapshot() traces — including under scheduled crashes — for ANY shard
// or thread count (tests/dist/test_shard.cpp pins shards in {1, 2, 4, 7}
// to the bit). That makes the distributed deployment directly comparable
// against the synchronous engine: AssembleAllocation() gathers the
// per-server columns into a core::Allocation for cross-checking (exact
// request conservation holds whenever no handshake is open; see
// OpenHandshakes).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocation.h"
#include "core/instance.h"
#include "core/pair_order_cache.h"
#include "dist/agent.h"
#include "dist/membership.h"
#include "dist/network.h"
#include "dist/shard.h"
#include "util/thread_pool.h"

namespace delaylb::dist {

struct RuntimeOptions {
  /// Seed of every random decision in the runtime (timer stagger, gossip
  /// peers, partner exploration).
  std::uint64_t seed = 1;
  /// Event-queue shards of the conservative PDES kernel. 1 (the default)
  /// is the sequential dispatch loop; higher values partition the agents
  /// across latency clusters and dispatch them in parallel. Traces are
  /// bit-identical for every value. The planner may collapse to fewer
  /// shards (see dist::PlanShards).
  std::size_t shards = 1;
  /// Worker threads of the sharded run; 0 derives
  /// min(shards, hardware_concurrency). Ignored when one shard is
  /// planned. Any value yields the same trace.
  std::size_t threads = 0;
  /// Audit the network accounting at every committed PDES window: counts
  /// the message events actually pending in the kernel and throws
  /// std::logic_error unless sent == delivered + dropped + in_flight.
  /// O(pending events) per window — a test/debug knob, off by default.
  bool audit_accounting = false;
  /// Derive agent.gossip_period = agent.balance_period / max(1, log2(m)) —
  /// the paper's recommended gossip-to-balance frequency ratio. Disable to
  /// set agent.gossip_period explicitly (the gossip ablation bench does).
  bool auto_gossip_period = true;
  /// Initiator handshake timeout; <= 0 derives 2 * max finite latency +
  /// agent.balance_period, which exceeds any round trip (and therefore
  /// any drop bounce, which rides the return path).
  double balance_timeout = 0.0;
  /// Elastic membership (dist/membership.h): initial_members[id] != 0
  /// marks the servers alive at time 0; every other id is constructed
  /// absent (no column mass, no timers, traffic dropped) and activated by
  /// ScheduleJoin. Empty (the default) means everyone — bit-identical to
  /// the fixed-membership runtime. The id universe itself stays fixed:
  /// absent ids are pre-placed in the shard plan by the member-aware
  /// PlanShards, so the conservative lookahead never changes mid-run.
  std::vector<std::uint8_t> initial_members;
  /// Observability hub (obs/hub.h); null disables all instrumentation.
  /// The runtime sizes the hub's lanes to the planned shard count, feeds
  /// the per-agent telemetry (handshake spans, gossip staleness), the
  /// kernel window metrics, and the divergence digest stream, and — for
  /// the duration of this runtime — stamps log lines with the committed
  /// window time. Sim-domain output is bit-identical for every
  /// shard/thread plan; the wall lanes (HubOptions::wall_lanes)
  /// additionally turn on the engine's window profiling.
  obs::Hub* obs = nullptr;
  AgentOptions agent;
};

/// One point of the runtime's observable trace.
struct RuntimeSnapshot {
  double time = 0.0;        ///< latest RunUntil() target
  double total_cost = 0.0;  ///< SumC of the assembled allocation
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;
  std::size_t bytes_sent = 0;  ///< WireSize total (see message.h)
  /// Per-class breakdown of bytes_sent (always sums to it): fixed framing,
  /// balance-column payloads, gossip traffic, and membership-protocol
  /// traffic (join/drain handshakes + tombstone quads) — so BENCH rows
  /// show which budget an optimization moved.
  std::size_t bytes_control = 0;
  std::size_t bytes_column = 0;
  std::size_t bytes_gossip = 0;
  std::size_t bytes_membership = 0;
  std::size_t balances_in_flight = 0;  ///< open handshake endpoints
  std::size_t members = 0;  ///< servers currently registered as members
  /// Fingerprint of the divergence digest stream so far (obs/digest.h):
  /// an order-independent fold of every per-window digest of the
  /// dispatched event stream. 0 when the runtime has no hub. Two runs
  /// that agree here dispatched identical event streams window by
  /// window; when they disagree, tools/trace_diff bisects the exported
  /// digest documents to the first divergent window.
  std::uint64_t digest = 0;
};

class DistributedRuntime {
 public:
  /// The instance must outlive the runtime.
  explicit DistributedRuntime(const core::Instance& instance,
                              RuntimeOptions options = {});

  /// Unregisters the log sim-time clock (registered when a hub is set).
  ~DistributedRuntime();
  DistributedRuntime(const DistributedRuntime&) = delete;
  DistributedRuntime& operator=(const DistributedRuntime&) = delete;

  /// Advances the simulation through every event with timestamp <= t.
  /// RunUntil targets must be non-decreasing across calls.
  void RunUntil(double t);

  RuntimeSnapshot Snapshot() const;

  /// Snapshot whose total_cost is ColumnTotalCost(): O(nonzero column
  /// entries) time and O(1) extra memory instead of materializing the
  /// m x m allocation — the only affordable trace at m = 50,000. Same
  /// counters as Snapshot(); the cost differs from Snapshot()'s only in
  /// floating-point summation order, and is itself bit-reproducible
  /// across seeds/shards/threads/delta modes.
  RuntimeSnapshot LightSnapshot() const;

  /// SumC straight off the per-server columns: processing from each
  /// agent's load, communication via the order cache's contiguous latency
  /// columns. Exact whenever UncommittedExchanges() == 0.
  double ColumnTotalCost() const;

  /// Schedules server `id` to crash at `down` and recover at `up` (both
  /// absolute simulation times not earlier than now, down < up). Windows of
  /// different calls may overlap; the server is down in their union.
  void ScheduleCrash(std::size_t id, double down, double up);

  /// Schedules server `id` to join (activate) at absolute time `at`
  /// (not earlier than now). Its bootstrap seed — the nearest member in
  /// SCHEDULE order, see membership.h — is chosen here, so the whole
  /// churn timeline is a pure function of the schedule. A join scheduled
  /// onto an already-active id is ignored at dispatch.
  void ScheduleJoin(std::size_t id, double at);

  /// Schedules server `id` to start draining at `at`: it hands its column
  /// off through drain handshakes on its balance ticks and deregisters
  /// once empty. Ignored at dispatch when the id is absent.
  void ScheduleLeave(std::size_t id, double at);

  /// Schedules organization `id`'s demand to change by `delta` (clamped
  /// at zero local share) at `at` — the scenario-pack load waves. Dropped
  /// at dispatch while the id is absent.
  void ScheduleLoadDelta(std::size_t id, double at, double delta);

  const Agent& agent(std::size_t id) const { return agents_.at(id); }
  const Network& network() const noexcept { return network_; }
  std::size_t size() const noexcept { return agents_.size(); }
  double now() const noexcept { return engine_.GlobalNow(); }

  /// The planned shard count (<= RuntimeOptions::shards) and the plan's
  /// conservative lookahead; committed PDES windows so far.
  std::size_t shards() const noexcept { return plan_.shards; }
  double lookahead() const noexcept { return plan_.lookahead; }
  std::uint64_t windows() const noexcept { return engine_.windows(); }
  std::uint64_t events_dispatched() const noexcept {
    return engine_.dispatched();
  }

  /// Throws std::logic_error unless the network counters match the
  /// message events actually pending in the kernel. Runs automatically at
  /// every window when RuntimeOptions::audit_accounting is set.
  void VerifyAccounting() const;

  /// Number of open handshake endpoints (initiator or responder records).
  std::size_t OpenHandshakes() const;

  /// Number of exchanges applied at the responder whose Commit is still
  /// outstanding. Zero means no transfer is on the wire:
  /// AssembleAllocation() then conserves every organization's load exactly
  /// (request/abort round trips never move state).
  std::size_t UncommittedExchanges() const;

  /// Gathers the per-server columns into one allocation. While an exchange
  /// is uncommitted the transfer is literally on the wire, so row sums may
  /// be off by the in-flight amount; call when UncommittedExchanges() == 0
  /// for an exact allocation.
  core::Allocation AssembleAllocation() const;

 private:
  /// Shard-local event dispatch: touches only state owned by `shard`
  /// (its agents, its network counters) plus engine Emits — the contract
  /// that lets windows run wait-free across shards.
  void Dispatch(std::size_t shard, ShardEvent&& event);

  /// Arms the resolution timeout of a freshly opened handshake (no-op for
  /// handshake 0): every initiator record must have one pending, whether
  /// the handshake came from a timer tick, a join, a recovery, or an
  /// immediate drain retry inside message handling.
  void ArmBalanceTimeout(std::size_t shard, std::size_t id,
                         std::uint64_t handshake);

  /// Arms a (re)joining id's gossip + balance timer chains at the current
  /// epoch, staggered by the derived per-(id, epoch) rng — the master rng
  /// stream is construction-only and cannot be extended mid-run.
  void ArmTimers(std::size_t shard, std::size_t id);

  /// Deregisters a just-departed id and retires its timer chains.
  void RetireDeparted(std::size_t id);

  /// Window-hook observability: kernel metrics (window width, events per
  /// window, per-shard heap occupancy), the kernel window trace span,
  /// and — when profiling — the wall busy/stall lanes. Runs on the
  /// driving thread at the barrier, so lane 0 is safe to write.
  void RecordWindow(double start, double end);

  const core::Instance& instance_;
  RuntimeOptions options_;
  double balance_timeout_ = 0.0;
  core::PairOrderCache order_cache_;
  ShardPlan plan_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< only for plans > 1 shard
  RuntimeEngine engine_;
  Network network_;
  /// One decode/balance scratch per shard, shared by the shard's agents
  /// (serial dispatch); declared before agents_ so it outlives them.
  std::vector<AgentScratch> scratch_;
  std::vector<Agent> agents_;
  /// Overlapping crash windows nest: a server is down while depth > 0.
  std::vector<std::uint32_t> crash_depth_;
  std::uint64_t crash_sequence_ = 0;  ///< EventKey minor of crash events
  /// Membership bookkeeping: schedule-order member set (seed choice),
  /// ever-joined flags (first join claims the demand), timer epochs.
  MembershipDirectory directory_;
  double horizon_ = 0.0;  ///< latest RunUntil target

  // Observability (all inert when options_.obs is null).
  Telemetry telemetry_;  ///< pre-registered agent metric/trace handles
  obs::DigestStream* digest_ = nullptr;  ///< hub's stream, cached
  obs::MetricId win_width_, win_events_, win_heap_;  ///< kernel domain
  /// Per-shard dispatched count at the last window barrier — the delta
  /// is the window's event count.
  std::vector<std::uint64_t> window_dispatched_;
  /// Committed-window clock feeding the log sim-time prefix
  /// (util::SetLogSimTime); written at the barrier, read by any logger.
  std::atomic<double> log_clock_{0.0};
};

}  // namespace delaylb::dist
