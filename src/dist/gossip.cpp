#include "dist/gossip.h"

#include <stdexcept>

namespace delaylb::dist {

GossipView::GossipView(std::size_t m, std::size_t self)
    : self_(self), loads_(m, 0.0), versions_(m, 0.0) {
  if (self >= m) {
    throw std::invalid_argument("GossipView: self index out of range");
  }
}

void GossipView::UpdateSelf(double load) {
  loads_[self_] = load;
  versions_[self_] += 1.0;
}

bool GossipView::Observe(std::size_t j, double load, double version) {
  if (j >= loads_.size()) {
    throw std::invalid_argument("GossipView::Observe: index out of range");
  }
  if (version <= versions_[j]) return false;
  versions_[j] = version;
  loads_[j] = load;
  return true;
}

std::size_t GossipView::Merge(std::span<const double> peer_loads,
                              std::span<const double> peer_versions) {
  if (peer_loads.size() != loads_.size() ||
      peer_versions.size() != versions_.size()) {
    throw std::invalid_argument("GossipView::Merge: size mismatch");
  }
  std::size_t updated = 0;
  for (std::size_t j = 0; j < loads_.size(); ++j) {
    if (peer_versions[j] > versions_[j]) {
      versions_[j] = peer_versions[j];
      loads_[j] = peer_loads[j];
      ++updated;
    }
  }
  return updated;
}

std::vector<double> GossipView::PackPayload() const {
  std::vector<double> payload;
  payload.reserve(2 * loads_.size());
  payload.insert(payload.end(), loads_.begin(), loads_.end());
  payload.insert(payload.end(), versions_.begin(), versions_.end());
  return payload;
}

std::size_t GossipView::MergePayload(std::span<const double> payload) {
  const std::size_t m = loads_.size();
  if (payload.size() != 2 * m) {
    throw std::invalid_argument("GossipView::MergePayload: size mismatch");
  }
  return Merge(payload.subspan(0, m), payload.subspan(m, m));
}

}  // namespace delaylb::dist
