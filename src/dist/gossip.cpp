#include "dist/gossip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace delaylb::dist {
namespace {

bool IdLess(const GossipEntry& entry, std::uint32_t id) {
  return entry.id < id;
}

}  // namespace

GossipView::GossipView(std::size_t m, std::size_t self)
    : m_(m), self_(self) {
  if (self >= m) {
    throw std::invalid_argument("GossipView: self index out of range");
  }
}

const GossipEntry* GossipView::Find(std::size_t j) const noexcept {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(),
                                   static_cast<std::uint32_t>(j), IdLess);
  if (it == entries_.end() || it->id != j) return nullptr;
  return &*it;
}

void GossipView::UpdateSelf(double load, double now) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(),
                                   static_cast<std::uint32_t>(self_), IdLess);
  if (it != entries_.end() && it->id == self_) {
    if (it->version >= kMaxWireVersion) {
      throw std::overflow_error(
          "GossipView::UpdateSelf: version counter exceeds exact double "
          "range");
    }
    it->load = load;
    ++it->version;
    // Strictly increasing per-owner stamps: two updates at the same
    // simulated instant get distinguishable stamps, which is what makes
    // per-owner stamp order equivalent to version order — the expiry
    // floor's refusal argument leans on that equivalence.
    it->stamp =
        now > it->stamp
            ? now
            : std::nextafter(it->stamp,
                             std::numeric_limits<double>::infinity());
    return;
  }
  GossipEntry entry;
  entry.id = static_cast<std::uint32_t>(self_);
  entry.load = load;
  entry.version = 1;
  entry.stamp = now;
  entries_.insert(it, entry);
}

bool GossipView::Observe(std::size_t j, double load, std::uint64_t version,
                         double stamp) {
  if (j >= m_) {
    throw std::invalid_argument("GossipView::Observe: index out of range");
  }
  // The adoption floor: anything as old as a previously expired entry is
  // refused, so a stale full-view payload cannot resurrect what expiry
  // dropped (a known entry's strictly-newer update always clears the
  // floor — per-owner stamps rise with the version, and the held copy
  // survived expiry).
  if (stamp < floor_) return false;
  const auto it = std::lower_bound(entries_.begin(), entries_.end(),
                                   static_cast<std::uint32_t>(j), IdLess);
  if (it != entries_.end() && it->id == j) {
    if (version <= it->version) return false;
    it->load = load;
    it->version = version;
    it->stamp = stamp;
    return true;
  }
  if (version == 0) return false;  // "never heard" carries no information
  GossipEntry entry;
  entry.id = static_cast<std::uint32_t>(j);
  entry.load = load;
  entry.version = version;
  entry.stamp = stamp;
  entries_.insert(it, entry);
  return true;
}

std::vector<std::uint16_t> GossipView::PackDigest(
    std::size_t buckets) const {
  const std::size_t B =
      buckets == 0 ? m_ : std::min(std::max<std::size_t>(buckets, 1), m_);
  std::vector<std::uint16_t> digest(B, kDigestIncomplete);
  std::vector<std::uint64_t> min_version(
      B, std::numeric_limits<std::uint64_t>::max());
  std::vector<std::size_t> seen(B, 0);
  for (const GossipEntry& e : entries_) {
    const std::size_t b = BucketOf(e.id, m_, B);
    ++seen[b];
    min_version[b] = std::min(min_version[b], e.version);
  }
  for (std::size_t b = 0; b < B; ++b) {
    // Bucket b covers ids in [ceil(b*m/B), ceil((b+1)*m/B)).
    const std::size_t lo = (b * m_ + B - 1) / B;
    const std::size_t hi = ((b + 1) * m_ + B - 1) / B;
    if (seen[b] != hi - lo) continue;  // incomplete: prove nothing
    // Saturation rounds DOWN so the level stays a lower bound.
    digest[b] = min_version[b] >= 65534
                    ? std::uint16_t{65534}
                    : static_cast<std::uint16_t>(min_version[b]);
  }
  return digest;
}

std::vector<double> GossipView::PackEntries() const {
  std::vector<double> payload;
  payload.reserve(4 * entries_.size());
  for (const GossipEntry& e : entries_) {
    payload.push_back(static_cast<double>(e.id));
    payload.push_back(e.load);
    payload.push_back(EncodeVersion(e.version));
    payload.push_back(e.stamp);
  }
  return payload;
}

std::vector<double> GossipView::PackEntry(std::size_t j) const {
  const GossipEntry* e = Find(j);
  if (e == nullptr) return {};
  return {static_cast<double>(e->id), e->load, EncodeVersion(e->version),
          e->stamp};
}

std::vector<double> GossipView::PackEntriesNewerThan(
    std::span<const std::uint16_t> digest) const {
  if (digest.empty()) return PackEntries();
  const std::size_t B = digest.size();
  std::vector<double> payload;
  for (const GossipEntry& e : entries_) {
    const std::uint16_t level = digest[BucketOf(e.id, m_, B)];
    // The level lower-bounds the peer's version of this entry: a copy at
    // or below it is provably already held at >= our version.
    if (level != kDigestIncomplete &&
        e.version <= static_cast<std::uint64_t>(level)) {
      continue;
    }
    payload.push_back(static_cast<double>(e.id));
    payload.push_back(e.load);
    payload.push_back(EncodeVersion(e.version));
    payload.push_back(e.stamp);
  }
  return payload;
}

std::size_t GossipView::MergeEntries(std::span<const double> payload,
                                     MergeObserver* observer) {
  if (payload.size() % 4 != 0) {
    throw std::invalid_argument("GossipView::MergeEntries: ragged quads");
  }
  const std::size_t count = payload.size() / 4;
  // Validation pass: ids integral, in range, strictly ascending (the pack
  // functions emit ascending ids; ascending input is what makes the merge
  // below a single linear pass). Also counts the genuinely new ids so the
  // in-place backward merge can resize once.
  std::size_t fresh = 0;
  double previous_id = -1.0;
  for (std::size_t k = 0; k < count; ++k) {
    const double id = payload[4 * k];
    if (!(id > previous_id) || id >= static_cast<double>(m_) ||
        id != std::floor(id)) {
      throw std::invalid_argument("GossipView::MergeEntries: bad entry id");
    }
    previous_id = id;
    (void)DecodeVersion(payload[4 * k + 2]);  // throws on inexact versions
    if (Find(static_cast<std::size_t>(id)) == nullptr) ++fresh;
  }

  std::size_t adopted = 0;
  const std::size_t old_size = entries_.size();
  entries_.resize(old_size + fresh);
  // Backward two-pointer merge: existing entries move right at most once,
  // so merging a payload of E entries into a view of N costs O(N + E)
  // regardless of how many are new.
  std::size_t write = entries_.size();
  std::size_t have = old_size;
  std::size_t take = count;
  while (take > 0) {
    const std::uint32_t id =
        static_cast<std::uint32_t>(payload[4 * (take - 1)]);
    if (have > 0 && entries_[have - 1].id > id) {
      entries_[--write] = entries_[--have];
      continue;
    }
    if (have > 0 && entries_[have - 1].id == id) {
      // Known id: adopt in place iff strictly newer and past the adoption
      // floor, then move the entry.
      GossipEntry& e = entries_[have - 1];
      const std::uint64_t version = DecodeVersion(payload[4 * take - 2]);
      if (version > e.version && payload[4 * take - 1] >= floor_) {
        e.load = payload[4 * take - 3];
        e.version = version;
        e.stamp = payload[4 * take - 1];
        ++adopted;
        if (observer != nullptr) observer->Adopted(e);
      }
      entries_[--write] = entries_[--have];
      --take;
      continue;
    }
    // Fresh id: adopt unless it carries the "never heard" version 0 or a
    // stamp expiry already refused (placeholders are erased below).
    const std::uint64_t version = DecodeVersion(payload[4 * take - 2]);
    --take;
    GossipEntry entry;
    entry.id = id;
    entry.load = payload[4 * take + 1];
    entry.stamp = payload[4 * take + 3];
    entry.version = version > 0 && entry.stamp >= floor_ ? version : 0;
    entries_[--write] = entry;
    if (entry.version > 0) {
      ++adopted;
      if (observer != nullptr) observer->Adopted(entry);
    }
  }
  // `write` now equals `have`; everything left of it is already in place.
  // Drop any version-0 placeholders that slipped in from fresh ids.
  if (fresh > 0) {
    const auto is_empty = [](const GossipEntry& e) {
      return e.version == 0;
    };
    const auto it =
        std::remove_if(entries_.begin(), entries_.end(), is_empty);
    entries_.erase(it, entries_.end());
  }
  return adopted;
}

std::size_t GossipView::Expire(double cutoff, std::size_t max_entries) {
  const std::size_t before = entries_.size();
  const std::uint32_t self = static_cast<std::uint32_t>(self_);
  // Everything the cutoff drops sits below it, so the floor moves to the
  // cutoff itself (entries exactly at the cutoff survive and may keep
  // being refreshed).
  floor_ = std::max(floor_, cutoff);
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [&](const GossipEntry& e) {
                       return e.id != self && e.stamp < cutoff;
                     }),
      entries_.end());
  if (max_entries > 0 && entries_.size() > max_entries) {
    // Deterministic eviction order: oldest (stamp, id) first, self exempt.
    std::vector<std::uint32_t> order(entries_.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      order[k] = static_cast<std::uint32_t>(k);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const GossipEntry& ea = entries_[a];
                const GossipEntry& eb = entries_[b];
                if (ea.stamp != eb.stamp) return ea.stamp < eb.stamp;
                return ea.id < eb.id;
              });
    std::vector<std::uint8_t> drop(entries_.size(), 0);
    std::size_t to_drop = entries_.size() - max_entries;
    for (const std::uint32_t k : order) {
      if (to_drop == 0) break;
      if (entries_[k].id == self) continue;
      drop[k] = 1;
      --to_drop;
      // Cap evictions can drop recent stamps, so the floor must step just
      // past the newest one: equal-stamp survivors still accept their
      // strictly-newer updates (per-owner stamps rise with the version),
      // while the evicted copies themselves stay refused.
      floor_ = std::max(
          floor_, std::nextafter(entries_[k].stamp,
                                 std::numeric_limits<double>::infinity()));
    }
    std::size_t write = 0;
    for (std::size_t k = 0; k < entries_.size(); ++k) {
      if (drop[k] == 0) entries_[write++] = entries_[k];
    }
    entries_.resize(write);
  }
  return before - entries_.size();
}

double GossipView::EncodeVersion(std::uint64_t version) {
  if (version > kMaxWireVersion) {
    throw std::overflow_error(
        "GossipView::EncodeVersion: version exceeds exact double range");
  }
  return static_cast<double>(version);
}

std::uint64_t GossipView::DecodeVersion(double wire) {
  if (!(wire >= 0.0) ||
      wire > static_cast<double>(kMaxWireVersion) ||
      wire != std::floor(wire)) {
    throw std::invalid_argument(
        "GossipView::DecodeVersion: not an exact version counter");
  }
  return static_cast<std::uint64_t>(wire);
}

}  // namespace delaylb::dist
