#include "dist/gossip.h"

#include <stdexcept>

namespace delaylb::dist {

GossipView::GossipView(std::size_t m, std::size_t self)
    : self_(self), loads_(m, 0.0), versions_(m, 0.0) {
  if (self >= m) {
    throw std::invalid_argument("GossipView: self index out of range");
  }
}

void GossipView::UpdateSelf(double load) {
  loads_[self_] = load;
  versions_[self_] += 1.0;
}

std::size_t GossipView::Merge(std::span<const double> peer_loads,
                              std::span<const double> peer_versions) {
  if (peer_loads.size() != loads_.size() ||
      peer_versions.size() != versions_.size()) {
    throw std::invalid_argument("GossipView::Merge: size mismatch");
  }
  std::size_t updated = 0;
  for (std::size_t j = 0; j < loads_.size(); ++j) {
    if (peer_versions[j] > versions_[j]) {
      versions_[j] = peer_versions[j];
      loads_[j] = peer_loads[j];
      ++updated;
    }
  }
  return updated;
}

}  // namespace delaylb::dist
