#pragma once
// The shared --local-engine CLI flag for binaries that drive the
// distributed runtime:
//   --local-engine NAME   "algorithm1" (the paper's exact pairwise
//                         balance, the default) or "ips" (iterative
//                         proportional scaling on the exchanged columns;
//                         see core::BalanceColumnsIps)
// Values already present in `options` are kept when the flag is absent.

#include <iostream>
#include <string>

#include "dist/agent.h"
#include "util/cli.h"

namespace delaylb::dist {

inline void ApplyLocalEngineFlag(const util::Cli& cli,
                                 AgentOptions& options) {
  const std::string name = cli.GetString("local-engine", "");
  if (name == "ips") {
    options.local_engine = LocalEngine::kIps;
  } else if (name == "algorithm1") {
    options.local_engine = LocalEngine::kAlgorithm1;
  } else if (!name.empty()) {
    std::cerr << "unknown --local-engine '" << name
              << "' (want algorithm1|ips), keeping default\n";
  }
}

}  // namespace delaylb::dist
