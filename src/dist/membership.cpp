#include "dist/membership.h"

#include <algorithm>

namespace delaylb::dist {
namespace {

/// SplitMix64-style finalizer: spreads (id, epoch) into independent
/// stagger streams regardless of how close the raw values sit.
std::uint64_t Mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* ToString(MemberState state) noexcept {
  switch (state) {
    case MemberState::kAbsent:
      return "absent";
    case MemberState::kJoining:
      return "joining";
    case MemberState::kMember:
      return "member";
    case MemberState::kDraining:
      return "draining";
  }
  return "?";
}

std::size_t ChooseJoinSeed(const net::LatencyMatrix& latency,
                           const std::vector<std::uint8_t>& members,
                           std::size_t joiner) {
  const std::size_t m = latency.size();
  std::size_t best = joiner;
  double best_distance = net::kUnreachable;
  for (std::size_t j = 0; j < m; ++j) {
    if (j == joiner || members[j] == 0) continue;
    const double d = std::min(latency(joiner, j), latency(j, joiner));
    if (best == joiner || d < best_distance) {
      best = j;
      best_distance = d;
    }
  }
  return best;
}

util::Rng TimerStaggerRng(std::uint64_t seed, std::size_t id,
                          std::uint64_t epoch) noexcept {
  return util::Rng(seed ^ Mix(0x6A09E667F3BCC909ull + id) ^
                   Mix(0xBB67AE8584CAA73Bull + epoch));
}

}  // namespace delaylb::dist
